#include "core/agent.h"

#include <algorithm>

#include "common/log.h"
#include "obs/flight_recorder.h"
#include "rnic/rnic.h"
#include "telemetry/trace.h"

namespace rpm::core {

Agent::Agent(host::Cluster& cluster, HostId host, const Controller& directory,
             transport::Channel& upload_ch, transport::RpcChannel& ctrl_rpc,
             AgentConfig cfg)
    : cluster_(cluster),
      host_(host),
      directory_(&directory),
      upload_ch_(upload_ch),
      ctrl_rpc_(ctrl_rpc),
      cfg_(cfg),
      rng_(cluster.fork_rng()),
      // Distinct id spaces per host so probe ids are globally unique (and
      // never collide with the small wr_ids used for ACK sends).
      next_probe_id_((static_cast<std::uint64_t>(host.value) + 1) << 40) {
  auto& reg = telemetry::registry();
  const std::string host_label = std::to_string(host_.value);
  for (std::uint8_t k = 0; k < 3; ++k) {
    const telemetry::Labels labels = {
        {"host", host_label},
        {"kind", probe_kind_name(static_cast<ProbeKind>(k))}};
    metrics_.probes_sent[k] =
        reg.counter("rpm_agent_probes_sent_total", "Probes posted", labels);
    metrics_.probes_completed[k] = reg.counter(
        "rpm_agent_probes_completed_total",
        "Probes with all four timestamps and ACK2", labels);
    metrics_.probe_timeouts[k] = reg.counter(
        "rpm_agent_probe_timeouts_total", "Probes missing an ACK at timeout",
        labels);
    metrics_.rtt_ns[k] = reg.histogram(
        "rpm_agent_network_rtt_ns", "Measured network RTT, (5-2)-(4-3)",
        labels);
  }
  metrics_.responses_sent = reg.counter("rpm_agent_responses_sent_total",
                                        "ACK1/ACK2 pairs issued as responder",
                                        {{"host", host_label}});
  metrics_.uploads = reg.counter("rpm_agent_uploads_total",
                                 "Record batches uploaded to the Analyzer",
                                 {{"host", host_label}});
  metrics_.upload_records = reg.counter("rpm_agent_upload_records_total",
                                        "Probe records uploaded",
                                        {{"host", host_label}});
  metrics_.upload_folded = reg.counter(
      "rpm_agent_upload_folded_total",
      "Healthy OK records folded into the batch HostSummary (sketch mode)",
      {{"host", host_label}});
  metrics_.upload_requeues = reg.counter(
      "rpm_agent_upload_requeues_total",
      "Expired upload batches re-queued at the application layer",
      {{"host", host_label}});
  metrics_.lease_expired = reg.counter(
      "rpm_agent_lease_expired_total",
      "Controller leases lost to missed heartbeat renewals",
      {{"host", host_label}});
  metrics_.reregistrations = reg.counter(
      "rpm_agent_reregistrations_total",
      "Registrations accepted after a lost lease", {{"host", host_label}});
  metrics_.spill_ring_depth = reg.gauge(
      "rpm_agent_spill_ring_depth",
      "Upload batches parked in the Analyzer-outage spill ring",
      {{"host", host_label}});
  metrics_.spill_dropped = reg.counter(
      "rpm_agent_spill_dropped_total",
      "Spilled batches evicted by the drop-oldest cap", {{"host", host_label}});
  metrics_.backoff_delay_ns = reg.histogram(
      "rpm_agent_reconnect_backoff_delay_ns",
      "Jittered backoff delays before re-registration / catch-up retries",
      {{"host", host_label}});
  // Transport observers. Attempt/ack fan out to the flight recorder (no-ops
  // while it is disabled); expiry feeds the application-level retry.
  upload_ch_.set_on_attempt([this](std::uint64_t seq, std::uint32_t attempt) {
    obs::recorder().batch_event(host_.value, seq,
                                obs::ProbeEventKind::kTransportAttempt,
                                attempt);
  });
  upload_ch_.set_on_acked([this](std::uint64_t seq) {
    obs::recorder().unbind_batch(host_.value, seq);
    // An acked upload means the Analyzer is reachable: reset the catch-up
    // backoff and drain any history parked during the outage.
    catchup_attempt_ = 0;
    if (running_ && !spill_.empty()) drain_spill();
  });
  upload_ch_.set_on_expire([this](std::uint64_t seq, std::any& payload) {
    on_upload_expired(seq, payload);
  });
}

Agent::~Agent() {
  if (running_) stop();
  // The channel belongs to the cluster's ControlPlane and may outlive this
  // Agent; its callbacks must not dangle into freed state.
  upload_ch_.set_on_attempt(nullptr);
  upload_ch_.set_on_acked(nullptr);
  upload_ch_.set_on_expire(nullptr);
}

bool Agent::host_down() const { return cluster_.host(host_).is_down(); }

void Agent::create_qps() {
  rnics_.clear();
  const auto& host_info = cluster_.topology().host(host_);
  rnics_.reserve(host_info.rnics.size());
  for (RnicId r : host_info.rnics) {
    RnicState st;
    st.rnic = r;
    const auto slot = static_cast<std::uint32_t>(rnics_.size());
    rnic::QpConfig qcfg;
    qcfg.type = rnic::QpType::kUD;
    qcfg.on_cqe = [this, slot](const rnic::Cqe& c) { on_cqe(slot, c); };
    st.ud_qpn = cluster_.rnic_device(r).create_qp(qcfg);
    rnics_.push_back(std::move(st));
  }
}

TimeNs Agent::backoff_delay(std::uint32_t attempt) {
  TimeNs d = cfg_.backoff_base;
  for (std::uint32_t i = 0; i < attempt && d < cfg_.backoff_max; ++i) d *= 2;
  d = std::min(d, cfg_.backoff_max);
  // Per-agent jitter from the Agent's own seeded Rng: deterministic for a
  // given seed, different across Agents — no thundering herd on a restarted
  // Controller, no wall-clock nondeterminism.
  if (cfg_.backoff_jitter > 0) d += rng_.uniform_int(0, cfg_.backoff_jitter);
  return d;
}

void Agent::register_with_controller() {
  AgentRegistration reg;
  reg.host = host_;
  for (const RnicState& st : rnics_) {
    RnicCommInfo info;
    info.rnic = st.rnic;
    info.ip = cluster_.topology().rnic(st.rnic).ip;
    info.gid = rnic::gid_of(st.rnic);
    info.qpn = st.ud_qpn;
    reg.rnics.push_back(info);
  }
  const std::uint64_t epoch = epoch_;
  ctrl_rpc_.call(std::any(std::move(reg)), [this, epoch](std::any& rsp) {
    if (!running_ || epoch != epoch_) return;
    const auto* ack = std::any_cast<RegistrationAck>(&rsp);
    // A crashed Controller answers accepted=false (if it answers at all);
    // the backoff probe below keeps retrying until one sticks.
    if (ack == nullptr || !ack->accepted) return;
    if (ack->controller_epoch > ctrl_epoch_seen_) {
      ctrl_epoch_seen_ = ack->controller_epoch;
    }
    registered_ = true;
    reg_attempt_ = 0;
    lease_duration_ = ack->lease_duration;
    lease_expiry_ = cluster_.scheduler().now() + lease_duration_;
    if (rereg_pending_) {
      rereg_pending_ = false;
      ++reregistrations_;
      metrics_.reregistrations.inc();
      telemetry::tracer().instant("agent-reregistered", "control");
      if (obs::recorder().enabled()) {
        for (const ProbeRecord& r : outbox_) {
          if (r.flight_sampled) {
            obs::recorder().record(r.id, obs::ProbeEventKind::kReregistered);
          }
        }
      }
    }
    // Registration is on file — pull pinglists right away rather than
    // probing nothing until the 5-minute refresh timer.
    refresh_pinglists();
  });
  // Backoff probe: if that registration goes unanswered (Controller down,
  // or the request/response expired on the wire), try again — capped
  // exponential backoff with per-agent jitter.
  const TimeNs delay = backoff_delay(reg_attempt_);
  cluster_.scheduler().schedule_after(delay, [this, epoch, delay] {
    if (!running_ || epoch != epoch_ || registered_) return;
    metrics_.backoff_delay_ns.observe(static_cast<double>(delay));
    ++reg_attempt_;
    register_with_controller();
  });
}

void Agent::heartbeat_tick() {
  if (!running_ || host_down()) return;
  const TimeNs now = cluster_.scheduler().now();
  if (registered_ && lease_expiry_ != kNoTime && now >= lease_expiry_) {
    // Renewals stopped landing (Controller crash, or the network ate every
    // heartbeat for a full lease): the lease is gone — start over.
    registered_ = false;
    ++lease_expiries_;
    metrics_.lease_expired.inc();
    telemetry::tracer().instant("agent-lease-expired", "control");
    if (obs::recorder().enabled()) {
      for (const ProbeRecord& r : outbox_) {
        if (r.flight_sampled) {
          obs::recorder().record(r.id, obs::ProbeEventKind::kLeaseExpired);
        }
      }
    }
    begin_reregistration();
    return;
  }
  if (!registered_) return;  // re-registration loop already in progress
  AgentHeartbeat hb;
  hb.host = host_;
  const std::uint64_t epoch = epoch_;
  ctrl_rpc_.call(std::any(hb), [this, epoch](std::any& rsp) {
    // The `registered_` guard drops heartbeat acks that raced a lease
    // expiry — a stale renewal must not resurrect a lease mid-backoff.
    if (!running_ || epoch != epoch_ || !registered_) return;
    const auto* ack = std::any_cast<HeartbeatAck>(&rsp);
    if (ack == nullptr) return;
    if (ack->controller_epoch > ctrl_epoch_seen_) {
      ctrl_epoch_seen_ = ack->controller_epoch;
    }
    if (ack->known) {
      lease_expiry_ = cluster_.scheduler().now() + lease_duration_;
    } else {
      // The Controller restarted and lost its registry: our lease is void
      // even though the process answers. Re-register right away.
      registered_ = false;
      begin_reregistration();
    }
  });
}

void Agent::begin_reregistration() {
  rereg_pending_ = true;
  reg_attempt_ = 0;
  register_with_controller();
}

void Agent::attach_tracepoints() {
  auto& reg = cluster_.host(host_).tracepoints();
  modify_handle_ = reg.attach_modify_qp(
      [this](const verbs::ModifyQpEvent& e) { on_service_connect(e); });
  destroy_handle_ = reg.attach_destroy_qp(
      [this](const verbs::DestroyQpEvent& e) { on_service_disconnect(e); });
}

void Agent::detach_tracepoints() {
  auto& reg = cluster_.host(host_).tracepoints();
  reg.detach(modify_handle_);
  reg.detach(destroy_handle_);
  modify_handle_ = destroy_handle_ = 0;
}

void Agent::start() {
  if (running_) return;
  running_ = true;
  create_qps();
  register_with_controller();  // async; its response pulls pinglists
  attach_tracepoints();

  auto& sched = cluster_.scheduler();
  for (std::uint32_t slot = 0; slot < rnics_.size(); ++slot) {
    RnicState& st = rnics_[slot];
    st.tormesh_task = std::make_unique<sim::PeriodicTask>(
        sched, st.tormesh.probe_interval,
        [this, slot] { probe_next(slot, ProbeKind::kTorMesh); });
    st.intertor_task = std::make_unique<sim::PeriodicTask>(
        sched,
        st.intertor.probe_interval > 0 ? st.intertor.probe_interval
                                       : msec(100),
        [this, slot] { probe_next(slot, ProbeKind::kInterTor); });
    st.service_task = std::make_unique<sim::PeriodicTask>(
        sched, cfg_.service_probe_interval,
        [this, slot] { probe_next(slot, ProbeKind::kServiceTracing); });
    // Stagger task phases so hosts do not fire in lockstep.
    st.tormesh_task->start(rng_.uniform_int(0, st.tormesh.probe_interval));
    st.intertor_task->start(rng_.uniform_int(0, msec(100)));
    st.service_task->start(rng_.uniform_int(0, cfg_.service_probe_interval));
  }
  upload_task_ = std::make_unique<sim::PeriodicTask>(
      sched, cfg_.upload_interval, [this] { upload_now(); });
  upload_task_->start(cfg_.upload_interval);
  refresh_task_ = std::make_unique<sim::PeriodicTask>(
      sched, cfg_.pinglist_refresh, [this] { refresh_pinglists(); });
  refresh_task_->start(cfg_.pinglist_refresh);
  heartbeat_task_ = std::make_unique<sim::PeriodicTask>(
      sched, cfg_.heartbeat_interval, [this] { heartbeat_tick(); });
  // Phase-jittered like the probing tasks, so heartbeats (and therefore
  // lease-expiry detections) never fire in cluster-wide lockstep.
  heartbeat_task_->start(rng_.uniform_int(0, cfg_.heartbeat_interval));
}

void Agent::stop() {
  if (!running_) return;
  // Flush-or-drop: measurements in the outbox must never vanish silently.
  // A live process flushes a final batch on the way out; a dead host cannot
  // push bytes onto the wire, so its outbox and in-flight retries are
  // counted as transport drops (rpm_transport_msgs_total{result="dropped"}).
  if (host_down()) {
    if (!outbox_.empty()) {
      upload_ch_.note_app_drop(1);
      outbox_.clear();
    }
    upload_ch_.cancel_unacked();
  } else if (!outbox_.empty()) {
    flush_outbox();
  }
  running_ = false;
  ++epoch_;  // in-flight RPC responses must not apply after this point
  detach_tracepoints();
  for (RnicState& st : rnics_) {
    if (st.tormesh_task) st.tormesh_task->cancel();
    if (st.intertor_task) st.intertor_task->cancel();
    if (st.service_task) st.service_task->cancel();
    cluster_.rnic_device(st.rnic).destroy_qp(st.ud_qpn);
  }
  if (upload_task_) upload_task_->cancel();
  if (refresh_task_) refresh_task_->cancel();
  if (heartbeat_task_) heartbeat_task_->cancel();
  pending_.clear();
  responder_ctx_.clear();
  periods_since_flush_ = 0;
  // The lease dies with the process; a restart re-registers from scratch.
  registered_ = false;
  rereg_pending_ = false;
  lease_expiry_ = kNoTime;
  reg_attempt_ = 0;
  catchup_attempt_ = 0;
  catchup_scheduled_ = false;
  if (!spill_.empty()) {
    // The spill ring is process memory: it cannot survive a stop. Account
    // its batches as drops like the outbox above.
    if (obs::recorder().enabled()) {
      for (const UploadBatch& b : spill_) {
        for (const ProbeRecord& r : b.records) {
          if (r.flight_sampled) {
            obs::recorder().record(r.id, obs::ProbeEventKind::kUploadDropped);
          }
        }
      }
    }
    upload_ch_.note_app_drop(spill_.size());
    spill_.clear();
    metrics_.spill_ring_depth.set(0.0);
  }
}

void Agent::restart() {
  stop();
  start();
}

void Agent::refresh_pinglists() {
  if (!running_ || rnics_.empty()) return;
  PinglistPullRequest req;
  req.host = host_;
  req.rnics.reserve(rnics_.size());
  for (const RnicState& st : rnics_) {
    req.rnics.push_back(st.rnic);
    // Refresh stale comm info of service-tracing targets too (§5: the Agent
    // pulls the latest info for all targets every 5 minutes).
    for (const auto& [qpn, entry] : st.service_by_qpn) {
      req.comm_targets.push_back(entry.target);
    }
  }
  const std::uint64_t epoch = epoch_;
  ctrl_rpc_.call(std::any(std::move(req)), [this, epoch](std::any& rsp) {
    if (!running_ || epoch != epoch_) return;
    if (auto* r = std::any_cast<PinglistPullResponse>(&rsp)) {
      deliver_pinglist_response(std::move(*r));
    }
  });
}

void Agent::deliver_pinglist_response(PinglistPullResponse rsp) {
  // Fence: a deposed primary's responses can still drain off the wire
  // after a failover. Epoch 0 (responses predating the epoch stamp, or
  // tests) and a fence that never armed both pass — the fence only trips
  // once a NEWER epoch has actually been heard.
  if (rsp.controller_epoch != 0 && ctrl_epoch_seen_ != 0 &&
      rsp.controller_epoch < ctrl_epoch_seen_) {
    ++stale_pinglists_;
    if (!stale_metric_registered_) {
      stale_metric_registered_ = true;
      stale_pinglists_total_ = telemetry::registry().counter(
          "rpm_agent_stale_pinglists_total",
          "Pinglist responses rejected by the Controller-epoch fence",
          {{"host", std::to_string(host_.value)}});
    }
    stale_pinglists_total_.inc();
    telemetry::tracer().instant("agent-stale-pinglist", "control");
    return;
  }
  if (rsp.controller_epoch > ctrl_epoch_seen_) {
    ctrl_epoch_seen_ = rsp.controller_epoch;
  }
  apply_pinglist_response(std::move(rsp));
}

void Agent::apply_pinglist_response(PinglistPullResponse rsp) {
  std::unordered_map<std::uint32_t, RnicCommInfo> fresh;
  fresh.reserve(rsp.comm.size());
  for (const RnicCommInfo& c : rsp.comm) fresh.emplace(c.rnic.value, c);
  for (RnicState& st : rnics_) {
    for (PinglistPullResponse::PerRnic& per : rsp.rnics) {
      if (per.rnic != st.rnic) continue;
      st.tormesh = std::move(per.tormesh);
      st.intertor = std::move(per.intertor);
      st.tormesh_next = st.intertor_next = 0;
      if (st.tormesh_task && st.tormesh.probe_interval > 0) {
        st.tormesh_task->set_period(st.tormesh.probe_interval);
      }
      if (st.intertor_task && st.intertor.probe_interval > 0) {
        st.intertor_task->set_period(st.intertor.probe_interval);
      }
      break;
    }
    for (auto& [qpn, entry] : st.service_by_qpn) {
      if (const auto it = fresh.find(entry.target.value); it != fresh.end()) {
        entry.target_gid = it->second.gid;
        entry.target_qpn = it->second.qpn;
      }
    }
    st.service.clear();
    for (const auto& [qpn, entry] : st.service_by_qpn) {
      st.service.push_back(entry);
    }
  }
}

std::size_t Agent::service_entries() const {
  std::size_t n = 0;
  for (const RnicState& st : rnics_) n += st.service_by_qpn.size();
  return n;
}

std::size_t Agent::approx_memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const RnicState& st : rnics_) {
    bytes += sizeof(st);
    bytes += (st.tormesh.entries.size() + st.intertor.entries.size() +
              st.service.size()) *
             sizeof(PinglistEntry);
    bytes += st.paths.size() * (sizeof(PathCacheEntry) + 16 * sizeof(LinkId));
  }
  bytes += pending_.size() * sizeof(Pending);
  bytes += outbox_.capacity() * sizeof(ProbeRecord);
  return bytes;
}

void Agent::probe_next(std::uint32_t slot, ProbeKind kind) {
  if (!running_ || host_down()) return;
  RnicState& st = rnics_[slot];
  switch (kind) {
    case ProbeKind::kTorMesh: {
      if (st.tormesh.entries.empty()) return;
      const PinglistEntry& e =
          st.tormesh.entries[st.tormesh_next++ % st.tormesh.entries.size()];
      send_probe(slot, e);
      return;
    }
    case ProbeKind::kInterTor: {
      if (st.intertor.entries.empty()) return;
      const PinglistEntry& e =
          st.intertor.entries[st.intertor_next++ % st.intertor.entries.size()];
      send_probe(slot, e);
      return;
    }
    case ProbeKind::kServiceTracing: {
      if (st.service.empty()) return;  // Service Tracing paused (§4.2.2)
      if (st.service_next >= st.service.size()) {
        // New round: shuffle so probes never phase-lock with the service's
        // compute/communicate cycle (§7.3).
        rng_.shuffle(std::span<PinglistEntry>(st.service));
        st.service_next = 0;
      }
      send_probe(slot, st.service[st.service_next++]);
      return;
    }
  }
}

Agent::PathCacheEntry& Agent::traced_paths(std::uint32_t slot,
                                           const PinglistEntry& e) {
  RnicState& st = rnics_[slot];
  PathCacheEntry& cache = st.paths[e.tuple.stable_hash()];
  const TimeNs now = cluster_.scheduler().now();
  if (cache.traced_at != kNoTime && now - cache.traced_at < cfg_.trace_refresh) {
    return cache;
  }
  cache.traced_at = now;
  // The ACK mirrors the probe's source port with swapped endpoints.
  FiveTuple rev_tuple = e.tuple;
  std::swap(rev_tuple.src_ip, rev_tuple.dst_ip);

  if (cfg_.use_int_telemetry) {
    // §7.4: INT stamps the path in the data plane — always answers, always
    // current.
    auto fwd = cluster_.int_telemetry().trace(st.rnic, e.target, e.tuple);
    auto rev = cluster_.int_telemetry().trace(e.target, st.rnic, rev_tuple);
    cache.fwd = std::move(fwd.path);
    cache.rev = std::move(rev.path);
    cache.known = true;
    return cache;
  }

  auto& fab = cluster_.fabric();
  const auto link_up = [&fab](LinkId l) { return fab.link_usable(l); };
  auto fwd = cluster_.traceroute().trace(st.rnic, e.target, e.tuple, now,
                                         link_up);
  auto rev = cluster_.traceroute().trace(e.target, st.rnic, rev_tuple, now,
                                         link_up);
  if (fwd.all_responded && rev.all_responded) {
    cache.fwd = fwd.path;
    cache.rev = rev.path;
    cache.known = true;
  }
  // If rate-limited, keep whatever we knew before (possibly stale — the
  // §4.2.3 trade-off).
  return cache;
}

void Agent::send_probe(std::uint32_t slot, const PinglistEntry& entry) {
  RnicState& st = rnics_[slot];
  if (!entry.target_qpn.valid()) return;  // target never registered

  const std::uint64_t pid = next_probe_id_++;
  Pending p;
  p.rnic_slot = slot;
  p.t1_host = cluster_.host(host_).host_now();  // ①
  p.record.id = pid;
  p.record.kind = entry.kind;
  p.record.prober = st.rnic;
  p.record.target = entry.target;
  p.record.prober_host = host_;
  p.record.tuple = entry.tuple;
  p.record.target_qpn = entry.target_qpn;
  p.record.service = entry.service;
  p.record.sent_at = cluster_.scheduler().now();
  const PathCacheEntry& cache = traced_paths(slot, entry);
  p.record.fwd_path = cache.fwd;
  p.record.rev_path = cache.rev;
  p.record.path_known = cache.known;
  // Flight-recorder sampling decision is made once, here at probe birth;
  // every later layer keys off the cached flag (or trace_id != 0).
  p.record.flight_sampled = obs::recorder().begin_probe(
      pid, probe_kind_name(entry.kind), static_cast<std::uint64_t>(p.t1_host));
  const bool sampled = p.record.flight_sampled;
  pending_.emplace(pid, std::move(p));

  Wire w;
  w.probe_id = pid;
  w.msg = 0;
  w.reply_qpn = st.ud_qpn;
  w.prober_rnic = st.rnic.value;
  w.sampled = sampled;
  cluster_.open_device(st.rnic).post_send_ud(
      st.ud_qpn, entry.target_gid, entry.target_qpn, entry.tuple.src_port,
      cfg_.probe_payload_bytes, w, /*wr_id=*/pid,
      /*trace_id=*/sampled ? pid : 0);
  ++probes_sent_;
  metrics_.probes_sent[static_cast<std::uint8_t>(entry.kind)].inc();
  if (telemetry::tracer().enabled()) {
    telemetry::tracer().async_begin("probe", probe_kind_name(entry.kind),
                                    pid);
  }

  cluster_.scheduler().schedule_after(cfg_.probe_timeout, [this, pid] {
    finalize_timeout(pid);
  });
}

void Agent::on_cqe(std::uint32_t slot, const rnic::Cqe& cqe) {
  if (!running_) return;
  if (cqe.is_send) {
    // Either a probe's send CQE (② — wr_id == probe id) or an ACK1 send CQE
    // (④ — wr_id in responder_ctx_).
    if (auto it = pending_.find(cqe.wr_id); it != pending_.end()) {
      it->second.t2_rnic = cqe.timestamp;  // ②
      if (it->second.record.flight_sampled) {
        obs::recorder().record(cqe.wr_id, obs::ProbeEventKind::kSendCqe,
                               static_cast<std::uint64_t>(cqe.timestamp));
      }
      return;
    }
    if (auto it = responder_ctx_.find(cqe.wr_id);
        it != responder_ctx_.end()) {
      // ④ is known only now — send ACK2 carrying ④-③ (§4.2.1 step 3).
      const ResponderCtx ctx = it->second;
      responder_ctx_.erase(it);
      if (ctx.sampled) {
        obs::recorder().record(ctx.probe_id, obs::ProbeEventKind::kAckSendCqe,
                               static_cast<std::uint64_t>(cqe.timestamp));
      }
      Wire w;
      w.probe_id = ctx.probe_id;
      w.msg = 2;
      w.responder_delay = cqe.timestamp - ctx.t3_rnic;  // ④-③
      RnicState& st = rnics_[ctx.slot];
      cluster_.open_device(st.rnic).post_send_ud(
          st.ud_qpn, ctx.prober_gid, ctx.prober_qpn, ctx.src_port,
          cfg_.probe_payload_bytes, w, next_wr_id_++,
          /*trace_id=*/ctx.sampled ? ctx.probe_id : 0);
      return;
    }
    return;  // ACK2 send CQE: nothing to do
  }

  const Wire* w = std::any_cast<Wire>(&cqe.payload);
  if (w == nullptr) return;  // not ours
  if (w->msg == 0) {
    handle_probe(slot, cqe, *w);
  } else {
    handle_ack(slot, cqe, *w);
  }
}

void Agent::handle_probe(std::uint32_t slot, const rnic::Cqe& cqe,
                         const Wire& w) {
  if (host_down()) return;  // a dead host answers nothing
  const TimeNs t3 = cqe.timestamp;  // ③
  // The Agent process must get scheduled before it can post ACK1; under CPU
  // starvation this stall exceeds the probe timeout (Fig. 6 right).
  const TimeNs wakeup = cluster_.host(host_).sample_process_delay();
  const Gid prober_gid = cqe.src_gid;
  const Qpn prober_qpn = w.reply_qpn;
  const std::uint16_t src_port = cqe.tuple.src_port;
  const std::uint64_t probe_id = w.probe_id;
  const bool sampled = w.sampled;
  if (sampled) {
    obs::recorder().record(probe_id, obs::ProbeEventKind::kResponderRecv,
                           static_cast<std::uint64_t>(t3));
    obs::recorder().record(probe_id, obs::ProbeEventKind::kResponderWake,
                           static_cast<std::uint64_t>(wakeup));
  }
  cluster_.scheduler().schedule_after(wakeup, [this, slot, t3, prober_gid,
                                               prober_qpn, src_port,
                                               probe_id, sampled] {
    if (!running_ || host_down()) return;
    RnicState& st = rnics_[slot];
    const std::uint64_t wr = next_wr_id_++;
    ResponderCtx ctx;
    ctx.slot = slot;
    ctx.t3_rnic = t3;
    ctx.prober_gid = prober_gid;
    ctx.prober_qpn = prober_qpn;
    ctx.src_port = src_port;
    ctx.probe_id = probe_id;
    ctx.sampled = sampled;
    responder_ctx_.emplace(wr, ctx);
    if (sampled) {
      obs::recorder().record(probe_id, obs::ProbeEventKind::kAckPosted);
    }
    Wire ack1;
    ack1.probe_id = probe_id;
    ack1.msg = 1;
    // ACK1 mirrors the probe's source port, like RNIC hardware ACKs on the
    // RC QPs services use (§5).
    cluster_.open_device(st.rnic).post_send_ud(
        st.ud_qpn, prober_gid, prober_qpn, src_port,
        cfg_.probe_payload_bytes, ack1, wr,
        /*trace_id=*/sampled ? probe_id : 0);
    ++responses_sent_;
    metrics_.responses_sent.inc();
  });
}

void Agent::handle_ack(std::uint32_t /*slot*/, const rnic::Cqe& cqe,
                       const Wire& w) {
  auto it = pending_.find(w.probe_id);
  if (it == pending_.end()) return;  // timed out already (late ACK)
  Pending& p = it->second;
  const bool sampled = p.record.flight_sampled;
  if (w.msg == 1) {
    p.t5_rnic = cqe.timestamp;  // ⑤
    if (sampled) {
      obs::recorder().record(w.probe_id, obs::ProbeEventKind::kProberAckCqe,
                             static_cast<std::uint64_t>(cqe.timestamp));
    }
    // ⑥ is an application timestamp: taken once the Agent process wakes.
    const std::uint64_t pid = w.probe_id;
    cluster_.scheduler().schedule_after(
        cluster_.host(host_).sample_process_delay(), [this, pid] {
          auto pit = pending_.find(pid);
          if (pit == pending_.end()) return;
          pit->second.t6_host = cluster_.host(host_).host_now();  // ⑥
          if (pit->second.record.flight_sampled) {
            obs::recorder().record(
                pid, obs::ProbeEventKind::kProberApp,
                static_cast<std::uint64_t>(pit->second.t6_host));
          }
          finalize_if_complete(pid);
        });
  } else if (w.msg == 2) {
    p.have_ack2 = true;
    p.record.responder_delay = w.responder_delay;  // ④-③
    if (sampled) {
      obs::recorder().record(w.probe_id, obs::ProbeEventKind::kAck2Recv,
                             static_cast<std::uint64_t>(w.responder_delay));
    }
    finalize_if_complete(w.probe_id);
  }
}

void Agent::finalize_if_complete(std::uint64_t probe_id) {
  auto it = pending_.find(probe_id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (p.t2_rnic == kNoTime || p.t5_rnic == kNoTime || p.t6_host == kNoTime ||
      !p.have_ack2) {
    return;
  }
  p.record.status = ProbeStatus::kOk;
  p.record.network_rtt =
      (p.t5_rnic - p.t2_rnic) - p.record.responder_delay;  // (⑤-②)-(④-③)
  p.record.prober_delay =
      (p.t6_host - p.t1_host) - (p.t5_rnic - p.t2_rnic);   // (⑥-①)-(⑤-②)
  const auto kind = static_cast<std::uint8_t>(p.record.kind);
  metrics_.probes_completed[kind].inc();
  metrics_.rtt_ns[kind].observe(static_cast<double>(p.record.network_rtt));
  if (p.record.flight_sampled) {
    obs::recorder().record(probe_id, obs::ProbeEventKind::kCompleted,
                           static_cast<std::uint64_t>(p.record.network_rtt),
                           static_cast<std::uint64_t>(p.record.prober_delay));
  }
  if (telemetry::tracer().enabled()) {
    telemetry::tracer().async_end("probe", probe_kind_name(p.record.kind),
                                  probe_id);
  }
  if (cfg_.sketch_thin_uploads && foldable(p.record)) {
    fold_record(p.record);
  } else {
    outbox_.push_back(std::move(p.record));
  }
  pending_.erase(it);
}

// Sketch-mode thinning: a healthy, unremarkable OK record carries no signal
// the HostSummary cannot (per-pair ToR-mesh OK counts, responder-delay and
// RTT sketches) — fold it. Everything the Analyzer's triage inspects record
// by record stays raw: timeouts (never reach here), service-tracing probes
// (per-service SLA + service attribution), hot-RTT / high-proc outliers, and
// flight-sampled probes (their timeline would dangle without the record).
bool Agent::foldable(const ProbeRecord& r) const {
  return r.status == ProbeStatus::kOk &&
         r.kind != ProbeKind::kServiceTracing && !r.flight_sampled &&
         r.network_rtt <= cfg_.sketch_keep_rtt_above &&
         r.responder_delay <= cfg_.sketch_keep_proc_above;
}

void Agent::fold_record(const ProbeRecord& r) {
  ++summary_.folded_records;
  if (r.kind == ProbeKind::kTorMesh) {
    ++summary_.tormesh_ok[{r.prober.value, r.target.value}];
  }
  summary_.ok_delay_by_target[r.target.value].add(
      static_cast<double>(r.responder_delay));
  summary_.rtt.add(static_cast<double>(r.network_rtt));
  metrics_.upload_folded.inc();
}

void Agent::finalize_timeout(std::uint64_t probe_id) {
  auto it = pending_.find(probe_id);
  if (it == pending_.end()) return;  // completed in time
  it->second.record.status = ProbeStatus::kTimeout;
  const ProbeKind kind = it->second.record.kind;
  metrics_.probe_timeouts[static_cast<std::uint8_t>(kind)].inc();
  if (it->second.record.flight_sampled) {
    obs::recorder().record(probe_id, obs::ProbeEventKind::kTimedOut);
  }
  if (telemetry::tracer().enabled()) {
    telemetry::tracer().async_end("probe", probe_kind_name(kind), probe_id);
  }
  outbox_.push_back(std::move(it->second.record));
  pending_.erase(it);
}

void Agent::upload_now() {
  if (!running_ || host_down()) return;  // a down host uploads nothing
  if (outbox_.empty() && summary_.empty()) return;
  ++periods_since_flush_;
  // Batched uploads (ROADMAP): coalesce several 5 s periods (and all RNICs)
  // into one sized batch instead of one small message per timer tick —
  // unless the outbox is already large enough to flush early.
  if (periods_since_flush_ < cfg_.upload_coalesce_periods &&
      outbox_.size() < cfg_.upload_flush_records) {
    return;
  }
  flush_outbox();
}

void Agent::flush_outbox() {
  // Sketch mode can leave the outbox empty (everything folded) with a
  // non-empty summary — that still has to flush, or the Analyzer reads the
  // host as silent and its folded history never arrives.
  if (outbox_.empty() && summary_.empty()) return;
  UploadBatch batch;
  batch.host = host_;
  batch.seq = next_batch_seq_++;
  batch.records.swap(outbox_);
  batch.summary = std::move(summary_);
  summary_ = sketch::HostSummary{};
  // Buffer reuse: pre-size the fresh outbox to what one coalesced batch
  // held, so steady state accumulates without re-growing from zero.
  outbox_.reserve(batch.records.size());
  periods_since_flush_ = 0;
  metrics_.uploads.inc();
  metrics_.upload_records.inc(batch.records.size());
  send_batch(std::move(batch));
}

void Agent::send_batch(UploadBatch&& batch) {
  const std::uint64_t batch_seq = batch.seq;
  const std::uint32_t requeues = batch.requeues;
  const std::uint64_t n_records = batch.records.size();
  std::vector<std::uint64_t> tracked;
  if (obs::recorder().enabled()) {
    for (const ProbeRecord& r : batch.records) {
      if (r.flight_sampled) tracked.push_back(r.id);
    }
  }
  // send() transmits attempt #1 synchronously — before the binding below
  // can exist — so the attempt is recorded by hand after binding. The wire
  // size feeds the transport's bandwidth cost model and byte counters.
  const Bytes wire = static_cast<Bytes>(upload_batch_wire_bytes(batch));
  const std::uint64_t chan_seq =
      upload_ch_.send(std::any(std::move(batch)), wire);
  if (!tracked.empty()) {
    auto& rec = obs::recorder();
    for (std::uint64_t pid : tracked) {
      if (requeues > 0) {
        rec.record(pid, obs::ProbeEventKind::kRequeued, requeues);
      } else {
        rec.record(pid, obs::ProbeEventKind::kOutboxFlush, batch_seq,
                   n_records);
      }
    }
    rec.bind_batch(host_.value, chan_seq, std::move(tracked));
    rec.batch_event(host_.value, chan_seq,
                    obs::ProbeEventKind::kTransportAttempt, 1);
  }
}

void Agent::on_upload_expired(std::uint64_t chan_seq, std::any& payload) {
  obs::recorder().unbind_batch(host_.value, chan_seq);
  auto* batch = std::any_cast<UploadBatch>(&payload);
  // The payload is moved-from when the batch was delivered and later
  // abandoned (lost-ack race with backpressure) — nothing to retry then.
  // (A summary-only sketch-mode batch has empty records but a non-empty
  // summary, so both must be empty to read as moved-from.)
  if (batch == nullptr || (batch->records.empty() && batch->summary.empty())) {
    return;
  }
  const auto drop_for_good = [&] {
    if (obs::recorder().enabled()) {
      for (const ProbeRecord& r : batch->records) {
        if (r.flight_sampled) {
          obs::recorder().record(r.id, obs::ProbeEventKind::kUploadDropped);
        }
      }
    }
    // The transport already counted the expiry/drop; no double count here.
  };
  if (!running_ || host_down()) {
    drop_for_good();
    return;
  }
  if (batch->requeues >= cfg_.upload_requeue_cap) {
    // All transport + application retries exhausted: the Analyzer looks to
    // be in an outage. Park the batch in the spill ring instead of losing
    // the history; it drains in seq order on reconnect.
    spill_batch(std::move(*batch));
    return;
  }
  // Application-level retry (ROADMAP): give the batch fresh transport
  // attempts, keeping its ORIGINAL seq so the Analyzer's (host,seq) dedup
  // absorbs a copy that was delivered after all. Deferred because on_expire
  // can fire from inside send() (drop-oldest backpressure) — re-entering
  // the channel synchronously would recurse.
  UploadBatch again = std::move(*batch);
  ++again.requeues;
  metrics_.upload_requeues.inc();
  const std::uint64_t epoch = epoch_;
  cluster_.scheduler().schedule_after(
      0, [this, epoch, b = std::move(again)]() mutable {
        if (!running_ || epoch != epoch_ || host_down()) {
          upload_ch_.note_app_drop(1);
          return;
        }
        send_batch(std::move(b));
      });
}

void Agent::spill_batch(UploadBatch&& batch) {
  // Insert in ascending seq — re-expiries of catch-up probes can interleave
  // with fresh spills — and ignore a seq that is already parked.
  const auto it = std::lower_bound(
      spill_.begin(), spill_.end(), batch.seq,
      [](const UploadBatch& b, std::uint64_t seq) { return b.seq < seq; });
  if (it != spill_.end() && it->seq == batch.seq) return;
  if (obs::recorder().enabled()) {
    for (const ProbeRecord& r : batch.records) {
      if (r.flight_sampled) {
        obs::recorder().record(r.id, obs::ProbeEventKind::kSpilled, batch.seq);
      }
    }
  }
  spill_.insert(it, std::move(batch));
  while (spill_.size() > cfg_.spill_ring_cap) {
    // Drop-oldest: under a long outage the freshest history wins, same
    // latest-wins policy as the transport's backpressure.
    const UploadBatch& victim = spill_.front();
    if (obs::recorder().enabled()) {
      for (const ProbeRecord& r : victim.records) {
        if (r.flight_sampled) {
          obs::recorder().record(r.id, obs::ProbeEventKind::kUploadDropped);
        }
      }
    }
    upload_ch_.note_app_drop(1);
    metrics_.spill_dropped.inc();
    spill_.pop_front();
  }
  metrics_.spill_ring_depth.set(static_cast<double>(spill_.size()));
  schedule_catchup();
}

void Agent::schedule_catchup() {
  if (catchup_scheduled_ || spill_.empty() || !running_) return;
  catchup_scheduled_ = true;
  const TimeNs delay = backoff_delay(catchup_attempt_);
  metrics_.backoff_delay_ns.observe(static_cast<double>(delay));
  const std::uint64_t epoch = epoch_;
  cluster_.scheduler().schedule_after(delay, [this, epoch] {
    if (epoch != epoch_) return;
    catchup_scheduled_ = false;
    if (!running_ || host_down() || spill_.empty()) return;
    ++catchup_attempt_;
    // Probe the outage with the OLDEST spilled batch; if it expires again
    // it lands back at the front of the ring and the next probe backs off
    // further. If it is acked, on_acked drains the rest.
    UploadBatch probe = std::move(spill_.front());
    spill_.pop_front();
    metrics_.spill_ring_depth.set(static_cast<double>(spill_.size()));
    // Keep the requeue header at the cap so another expiry routes straight
    // back into the spill ring instead of burning requeue rounds.
    probe.requeues = cfg_.upload_requeue_cap;
    send_batch(std::move(probe));
    schedule_catchup();
  });
}

void Agent::drain_spill() {
  // Deferred: on_acked fires from inside channel code; re-entering send()
  // synchronously from there would recurse into the channel.
  const std::uint64_t epoch = epoch_;
  cluster_.scheduler().schedule_after(0, [this, epoch] {
    if (!running_ || epoch != epoch_ || spill_.empty()) return;
    // Snapshot the ring: anything re-spilled while draining (drop-oldest
    // backpressure) waits for the next ack or catch-up probe instead of
    // cycling through this loop at one instant.
    std::deque<UploadBatch> ready;
    ready.swap(spill_);
    metrics_.spill_ring_depth.set(0.0);
    for (UploadBatch& b : ready) {
      b.requeues = cfg_.upload_requeue_cap;
      if (obs::recorder().enabled()) {
        for (const ProbeRecord& r : b.records) {
          if (r.flight_sampled) {
            obs::recorder().record(r.id, obs::ProbeEventKind::kSpillDrained,
                                   b.seq);
          }
        }
      }
      // Ascending-seq order: the Analyzer's (host, seq) dedup and period
      // bucketing absorb this late history without double-counting votes.
      send_batch(std::move(b));
    }
  });
}

void Agent::on_service_connect(const verbs::ModifyQpEvent& e) {
  if (!running_) return;
  // Find which of our RNICs this connection uses.
  for (RnicState& st : rnics_) {
    if (st.rnic != e.rnic) continue;
    // Ignore our own probing QPs (they are UD and never call modify_qp, but
    // be defensive about other monitors). The lookup hits the host-local
    // registry replica synchronously; the tracepoint path cannot wait for a
    // control-plane round trip.
    const auto info = directory_->comm_info_by_ip(e.tuple.dst_ip);
    if (!info) {
      log_warn() << "agent(" << host_.value
                 << "): no comm info for service target ip";
      return;
    }
    PinglistEntry entry;
    entry.target = info->rnic;
    entry.target_gid = info->gid;
    entry.target_qpn = info->qpn;
    entry.tuple = e.tuple;  // the service flow's exact 5-tuple
    entry.kind = ProbeKind::kServiceTracing;
    entry.service = e.service;
    st.service_by_qpn[e.local_qpn.value] = entry;
    st.service.push_back(entry);
    return;
  }
}

void Agent::on_service_disconnect(const verbs::DestroyQpEvent& e) {
  if (!running_) return;
  for (RnicState& st : rnics_) {
    if (st.rnic != e.rnic) continue;
    const auto it = st.service_by_qpn.find(e.local_qpn.value);
    if (it == st.service_by_qpn.end()) return;
    const FiveTuple tuple = it->second.tuple;
    st.service_by_qpn.erase(it);
    st.service.erase(
        std::remove_if(st.service.begin(), st.service.end(),
                       [&tuple](const PinglistEntry& p) {
                         return p.tuple == tuple;
                       }),
        st.service.end());
    st.service_next = 0;
    return;
  }
}

}  // namespace rpm::core
