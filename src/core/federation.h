// Hierarchical federation (ROADMAP): per-pod Analyzers + a global merge
// tier.
//
// At datacenter scale one Analyzer cannot hold every pod's record stream.
// The federation splits the §4.3 pipeline by pod:
//
//   PodAnalyzer     a full Analyzer (IngestSink + AnalysisCore) scoped to
//                   the hosts of one pod. It triages locally — host-down,
//                   QPN reset, anomalous RNICs, Algorithm-1 voting over its
//                   own evidence — and once per period emits ONE compact
//                   PodDigest over a transport::Channel: problems, evidence
//                   chains, mergeable SLA sketches, service networks, and
//                   the foreign timeouts it could not triage (the target
//                   host lives in another pod, so "down" vs "switch drop"
//                   is unknowable locally).
//
//   GlobalAnalyzer  consumes PodDigests (deduplicated per pod by seq, the
//                   same window machinery the IngestSink uses per host),
//                   and once per period — offset after the pods fire, so
//                   digests have a control-plane flight's head start —
//                   merges them: union of down-host / blamed-RNIC sets,
//                   triage + Algorithm-1 voting of the deferred foreign
//                   timeouts, cross-pod merge of same-category problems by
//                   suspect-link overlap, cluster/service SLA tables from
//                   the mergeable digests, and the §4.3.4 P0/P1/P2 impact
//                   pass against the union service networks.
//
// Wire volume is the point: a PodDigest costs O(problems + sketches), not
// O(records). bench_federation measures the ratio.
//
// Determinism: same seed => byte-identical verdicts for a given pod count
// (thread-count invariant); pods = 1 keeps the flat deployment, which is
// byte-identical to the pre-federation pipeline.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/analyzer.h"
#include "core/digest.h"
#include "core/ingest.h"
#include "core/journal.h"
#include "sim/scheduler.h"
#include "telemetry/metrics.h"
#include "topo/topology.h"
#include "transport/transport.h"

namespace rpm::core {

/// One pod's Analyzer: the flat Analyzer plus federation scoping and the
/// per-period digest flush. Owns its role's journal checkpoints under
/// "pod<N>".
class PodAnalyzer {
 public:
  PodAnalyzer(const topo::Topology& topo, const Controller& controller,
              sim::Scheduler& sched, AnalyzerConfig cfg,
              std::uint32_t pod, std::vector<HostId> hosts);

  /// Where digests go (wire bytes accounted via pod_digest_wire_bytes).
  /// Unset: digests are built and counted but not sent (tests).
  void set_digest_channel(transport::Channel* ch) { channel_ = ch; }

  [[nodiscard]] Analyzer& analyzer() { return analyzer_; }
  [[nodiscard]] const Analyzer& analyzer() const { return analyzer_; }
  [[nodiscard]] std::uint32_t pod() const { return pod_; }
  [[nodiscard]] const std::vector<HostId>& hosts() const { return hosts_; }
  [[nodiscard]] std::uint64_t digests_sent() const { return seq_; }
  [[nodiscard]] std::size_t digest_bytes_sent() const { return bytes_sent_; }

  void start() { analyzer_.start(); }
  void stop() { analyzer_.stop(); }

  /// Journal under role "pod<N>": checkpoints carry the digest seq so a
  /// restarted pod never reuses (and never skips) a sequence number.
  void attach_journal(StateJournal* journal);

  /// Process crash / journal-restore (see Analyzer::crash). The digest seq
  /// reloads from the checkpoint; with no checkpoint it restarts at 0 —
  /// the GlobalAnalyzer's dedup window tolerates the replay.
  void crash();
  bool restart_from_journal();

 private:
  void on_period(const PeriodReport& rep, const obs::DiagnosisLog& dlog);

  std::uint32_t pod_;
  std::vector<HostId> hosts_;
  std::string role_;
  Analyzer analyzer_;
  FederationScratch scratch_;
  transport::Channel* channel_ = nullptr;
  StateJournal* journal_ = nullptr;
  std::uint64_t seq_ = 0;  // digests emitted; journaled across crashes
  std::size_t bytes_sent_ = 0;
  telemetry::Counter digests_total_;
  telemetry::Counter digest_bytes_total_;
};

/// The global merge tier. NOT an AnalysisCore: it never sees a ProbeRecord,
/// only digests — but it emits the same PeriodReport/DiagnosisLog shapes,
/// so ChaosRunner and the examples score it exactly like a flat Analyzer.
class GlobalAnalyzer {
 public:
  struct Config {
    /// Thresholds + period reused from the pod pipeline (period must match
    /// the pods' so every merge tick sees one digest per live pod).
    AnalyzerConfig analyzer{};
    /// Merge ticks fire this far after the pods' period boundary, giving
    /// digests a control-plane flight's head start.
    TimeNs merge_offset = msec(500);
    /// Per-pod digest seq dedup window (retries/duplicates).
    std::uint64_t digest_dedup_window = 64;
  };

  GlobalAnalyzer(const topo::Topology& topo, sim::Scheduler& sched,
                 Config cfg);

  /// Digest arrival (transport handler). Deduplicated per pod by seq;
  /// buffered until the next merge tick. Dropped during outage.
  void ingest_digest(PodDigest&& d);

  void register_service(ServiceBinding binding);

  void start();
  void stop();

  /// Outage lifecycle, mirroring Analyzer's: nothing ingested, no merge
  /// ticks; recovery restarts the period boundary at `now`.
  void set_outage(bool outage);
  [[nodiscard]] bool in_outage() const { return outage_; }

  /// Run one merge over every digest buffered since the previous tick.
  const PeriodReport& merge_now();

  [[nodiscard]] const std::deque<PeriodReport>& history() const {
    return history_;
  }
  [[nodiscard]] const PeriodReport* last_report() const {
    return history_.empty() ? nullptr : &history_.back();
  }
  [[nodiscard]] bool network_innocent(ServiceId service) const;
  [[nodiscard]] std::string explain(std::uint64_t problem_id) const;
  [[nodiscard]] const obs::EvidenceChain* evidence(EvidenceRef ref) const;
  [[nodiscard]] const obs::DiagnosisLog* last_diagnosis() const {
    return diagnosis_.empty() ? nullptr : &diagnosis_.back();
  }
  [[nodiscard]] const std::deque<obs::DiagnosisLog>& diagnosis_history()
      const {
    return diagnosis_;
  }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t merges() const { return merges_; }
  [[nodiscard]] std::uint64_t duplicate_digests() const {
    return duplicate_digests_;
  }
  /// Highest digest seq accepted from `pod` (0 when none seen) — the chaos
  /// oracle checks it never exceeds what the pod actually sent, i.e. a
  /// journal restore never fabricates or reuses a sequence number.
  [[nodiscard]] std::uint64_t max_digest_seq(std::uint32_t pod) const {
    auto it = digest_dedup_.find(pod);
    return it == digest_dedup_.end() ? 0 : it->second.max_seq;
  }

  /// Journal under role "global": checkpoints hold the per-pod digest dedup
  /// windows + period boundary + id counters; aged-out DiagnosisLogs spill
  /// into the archive.
  void attach_journal(StateJournal* journal);
  void crash();
  bool restart_from_journal();

 private:
  void save_checkpoint();
  /// Algorithm-1 voting over foreign-timeout paths (the global counterpart
  /// of AnalysisCore::vote_paths).
  void vote_foreign(const std::vector<const ForeignTimeout*>& evidence,
                    Problem& p, obs::EvidenceChain& c) const;

  const topo::Topology& topo_;
  sim::Scheduler& sched_;
  Config cfg_;

  std::vector<PodDigest> pending_;
  std::unordered_map<std::uint32_t, DedupState> digest_dedup_;  // by pod
  std::vector<ServiceBinding> services_;
  std::deque<PeriodReport> history_;
  std::deque<obs::DiagnosisLog> diagnosis_;
  std::uint64_t next_evidence_id_ = 1;
  std::uint64_t next_problem_id_ = 1;
  TimeNs last_period_end_ = 0;
  std::uint64_t merges_ = 0;
  std::uint64_t duplicate_digests_ = 0;
  bool outage_ = false;
  StateJournal* journal_ = nullptr;
  std::unique_ptr<sim::PeriodicTask> merge_task_;
  telemetry::Counter merges_total_;
  telemetry::Counter digests_merged_total_;
};

}  // namespace rpm::core
