#include "core/analyzer.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "common/stats.h"
#include "telemetry/trace.h"

namespace rpm::core {

const char* Analyzer::stage_name(int stage) {
  static constexpr const char* kNames[kNumStages] = {
      "classify",    // §4.3.1 noise filters (host down, QPN reset)
      "rnic_detect",  // §4.3.2 anomalous-RNIC detection
      "attribute",    // final per-timeout cause attribution
      "localize",     // §4.3.3 Algorithm-1 voting + problem emission
      "bottlenecks",  // high-RTT / high-processing-delay detection
      "sla",          // percentile aggregation
      "impact",       // §4.3.4 P0/P1/P2 assessment
  };
  return kNames[stage];
}

Analyzer::Analyzer(const topo::Topology& topo, const Controller& controller,
                   sim::EventScheduler& sched, AnalyzerConfig cfg)
    : topo_(topo), controller_(controller), sched_(sched), cfg_(cfg) {
  if (cfg_.period <= 0) {
    throw std::invalid_argument("AnalyzerConfig: period must be > 0");
  }
  if (cfg_.ingest_shards == 0) cfg_.ingest_shards = 1;
  shards_.resize(cfg_.ingest_shards);
  auto& reg = telemetry::registry();
  metrics_.periods =
      reg.counter("rpm_analyzer_periods_total", "Analysis periods executed");
  metrics_.uploads = reg.counter("rpm_analyzer_uploads_total",
                                 "Agent record batches received");
  metrics_.records = reg.counter("rpm_analyzer_records_total",
                                 "Probe records received from Agents");
  metrics_.batches_accepted =
      reg.counter("rpm_analyzer_batches_total",
                  "Transport upload batches by dedup outcome",
                  {{"result", "accepted"}});
  metrics_.batches_duplicate =
      reg.counter("rpm_analyzer_batches_total",
                  "Transport upload batches by dedup outcome",
                  {{"result", "duplicate"}});
  metrics_.bucket_records.reserve(cfg_.ingest_shards);
  for (std::size_t b = 0; b < cfg_.ingest_shards; ++b) {
    metrics_.bucket_records.push_back(reg.histogram(
        "rpm_analyzer_ingest_bucket_records",
        "Records merged from one ingest shard at period close",
        {{"bucket", std::to_string(b)}}));
  }
  for (int s = 0; s < kNumStages; ++s) {
    metrics_.stage_ns[s] =
        reg.histogram("rpm_analyzer_stage_ns",
                      "Wall-clock cost of one pipeline stage per period",
                      {{"stage", stage_name(s)}});
  }
  for (std::uint8_t c = 0; c < 5; ++c) {
    metrics_.timeouts_by_cause[c] = reg.counter(
        "rpm_analyzer_timeouts_total", "Timeout probes by attributed cause",
        {{"cause", anomaly_cause_name(static_cast<AnomalyCause>(c))}});
  }
  for (std::uint8_t c = 0; c < 7; ++c) {
    metrics_.problems_by_category[c] = reg.counter(
        "rpm_analyzer_problems_total", "Problems emitted by category",
        {{"category", problem_category_name(static_cast<ProblemCategory>(c))}});
  }
  for (std::uint8_t p = 0; p < 4; ++p) {
    metrics_.problems_by_priority[p] = reg.counter(
        "rpm_analyzer_problem_priority_total", "Problems emitted by priority",
        {{"priority", priority_name(static_cast<Priority>(p))}});
  }
}

void Analyzer::ingest_batch(UploadBatch batch) {
  // Any delivery — duplicate included — proves the Agent process is alive:
  // host-down detection keys on received uploads, and a retried batch is
  // still an upload the host managed to get onto the wire.
  last_upload_[batch.host.value] = sched_.now();
  known_hosts_.insert(batch.host.value);
  DedupState& st = batch_dedup_[batch.host.value];
  if (st.seen.contains(batch.seq) ||
      (st.max_seq > cfg_.dedup_window &&
       batch.seq < st.max_seq - cfg_.dedup_window)) {
    // Repeat delivery of a retried batch (or one so old it fell out of the
    // window — count it as a duplicate rather than risk double-counting).
    metrics_.batches_duplicate.inc();
    return;
  }
  st.seen.insert(batch.seq);
  if (batch.seq > st.max_seq) {
    st.max_seq = batch.seq;
    // Slide the window: forget seqs that can no longer arrive as fresh.
    if (st.max_seq > cfg_.dedup_window) {
      const std::uint64_t floor = st.max_seq - cfg_.dedup_window;
      std::erase_if(st.seen, [floor](std::uint64_t s) { return s < floor; });
    }
  }
  metrics_.batches_accepted.inc();
  metrics_.uploads.inc();
  metrics_.records.inc(batch.records.size());
  ingest(batch.host, std::move(batch.records));
}

void Analyzer::upload(HostId host, std::vector<ProbeRecord> records) {
  metrics_.uploads.inc();
  metrics_.records.inc(records.size());
  last_upload_[host.value] = sched_.now();
  known_hosts_.insert(host.value);
  ingest(host, std::move(records));
}

void Analyzer::ingest(HostId host, std::vector<ProbeRecord>&& records) {
  if (tap_) {
    for (const ProbeRecord& r : records) tap_(r);
  }
  std::vector<ProbeRecord>& shard = shards_[host.value % shards_.size()];
  const std::size_t needed = shard.size() + records.size();
  if (shard.capacity() < needed) {
    // Grow geometrically: an exact-size reserve per batch would force a
    // reallocation on every append, quadratic over a period.
    shard.reserve(std::max(needed, shard.capacity() * 2));
  }
  shard.insert(shard.end(), std::make_move_iterator(records.begin()),
               std::make_move_iterator(records.end()));
}

std::vector<ProbeRecord> Analyzer::collect_shards() {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s.size();
  std::vector<ProbeRecord> merged;
  merged.reserve(total);
  for (std::size_t b = 0; b < shards_.size(); ++b) {
    std::vector<ProbeRecord>& s = shards_[b];
    metrics_.bucket_records[b].observe(static_cast<double>(s.size()));
    merged.insert(merged.end(), std::make_move_iterator(s.begin()),
                  std::make_move_iterator(s.end()));
    s.clear();  // keeps capacity for the next period
  }
  return merged;
}

void Analyzer::register_service(ServiceBinding binding) {
  if (!binding.metric) {
    throw std::invalid_argument("register_service: metric required");
  }
  services_.push_back(std::move(binding));
}

void Analyzer::start() {
  if (period_task_) return;
  period_task_ = std::make_unique<sim::PeriodicTask>(
      sched_, cfg_.period, [this] { analyze_now(); });
  period_task_->start(cfg_.period);
}

void Analyzer::stop() {
  if (period_task_) period_task_->cancel();
  period_task_.reset();
}

void Analyzer::vote_paths(const std::vector<const ProbeRecord*>& records,
                          std::vector<LinkId>& out_links,
                          std::vector<SwitchId>& out_switches,
                          std::vector<std::pair<LinkId, std::size_t>>*
                              top_votes) const {
  // Algorithm 1: count traversals of each link (and switch) over the
  // anomalous probes' forward and ACK paths; return the top voted.
  std::unordered_map<std::uint32_t, std::size_t> link_votes;
  std::unordered_map<std::uint32_t, std::size_t> switch_votes;
  for (const ProbeRecord* r : records) {
    if (!r->path_known) continue;
    for (const routing::Path* p : {&r->fwd_path, &r->rev_path}) {
      for (LinkId l : p->links) ++link_votes[l.value];
      for (SwitchId s : p->switches) ++switch_votes[s.value];
    }
  }
  std::size_t best_link = 0;
  for (const auto& [_, v] : link_votes) best_link = std::max(best_link, v);
  for (const auto& [l, v] : link_votes) {
    if (v == best_link && best_link > 0) out_links.push_back(LinkId{l});
  }
  std::size_t best_switch = 0;
  for (const auto& [_, v] : switch_votes) {
    best_switch = std::max(best_switch, v);
  }
  for (const auto& [s, v] : switch_votes) {
    if (v == best_switch && best_switch > 0) {
      out_switches.push_back(SwitchId{s});
    }
  }
  std::sort(out_links.begin(), out_links.end());
  std::sort(out_switches.begin(), out_switches.end());
  if (top_votes != nullptr) {
    std::vector<std::pair<LinkId, std::size_t>> all;
    all.reserve(link_votes.size());
    for (const auto& [l, v] : link_votes) all.emplace_back(LinkId{l}, v);
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.second != b.second) return a.second > b.second;
      return a.first < b.first;
    });
    if (all.size() > 10) all.resize(10);
    *top_votes = std::move(all);
  }
}

SlaReport Analyzer::make_sla(
    const std::vector<const ProbeRecord*>& records,
    const std::unordered_set<std::uint64_t>& rnic_timeouts,
    const std::unordered_set<std::uint64_t>& switch_timeouts) const {
  SlaReport sla;
  PercentileWindow rtt;
  PercentileWindow proc;
  for (const ProbeRecord* r : records) {
    ++sla.probes;
    if (r->status == ProbeStatus::kTimeout) {
      ++sla.timeouts;
      if (rnic_timeouts.contains(r->id)) sla.rnic_drop_rate += 1.0;
      if (switch_timeouts.contains(r->id)) sla.switch_drop_rate += 1.0;
    } else {
      rtt.add(static_cast<double>(r->network_rtt));
      proc.add(static_cast<double>(r->responder_delay));
    }
  }
  if (sla.probes > 0) {
    sla.rnic_drop_rate /= static_cast<double>(sla.probes);
    sla.switch_drop_rate /= static_cast<double>(sla.probes);
  }
  sla.rtt_mean = rtt.mean();
  sla.rtt_p50 = rtt.percentile(0.50);
  sla.rtt_p90 = rtt.percentile(0.90);
  sla.rtt_p99 = rtt.percentile(0.99);
  sla.rtt_p999 = rtt.percentile(0.999);
  sla.proc_p50 = proc.percentile(0.50);
  sla.proc_p90 = proc.percentile(0.90);
  sla.proc_p99 = proc.percentile(0.99);
  sla.proc_p999 = proc.percentile(0.999);
  return sla;
}

const PeriodReport& Analyzer::analyze_now() {
  const TimeNs now = sched_.now();
  PeriodReport rep;
  rep.period_start = last_period_end_;
  rep.period_end = now;
  last_period_end_ = now;

  std::vector<ProbeRecord> records = collect_shards();
  rep.records_processed = records.size();

  metrics_.periods.inc();
  const std::uint64_t period_span =
      telemetry::tracer().begin_span("analyzer.period", "analyzer");
  int cur_stage = -1;
  std::uint64_t stage_span = 0;
  std::chrono::steady_clock::time_point stage_t0{};
  // Transition between pipeline stages: close the previous stage's span and
  // wall-clock histogram sample, open the next. enter_stage(-1) closes out.
  const auto enter_stage = [&](int next) {
    const auto wall = std::chrono::steady_clock::now();
    if (cur_stage >= 0) {
      metrics_.stage_ns[cur_stage].observe(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(wall -
                                                               stage_t0)
              .count()));
      telemetry::tracer().end_span(stage_span);
    }
    cur_stage = next;
    stage_t0 = wall;
    if (next >= 0) {
      stage_span = telemetry::tracer().begin_span(
          std::string("analyzer.") + stage_name(next), "analyzer");
    }
  };

  // ---- step 1: non-network timeouts and probe noise (§4.3.1) ----
  enter_stage(0);

  std::unordered_set<std::uint32_t> down_hosts;
  for (std::uint32_t h : known_hosts_) {
    const auto it = last_upload_.find(h);
    if (it == last_upload_.end() ||
        now - it->second > cfg_.host_silence_threshold) {
      down_hosts.insert(h);
    }
  }

  std::vector<std::optional<AnomalyCause>> cause(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const ProbeRecord& r = records[i];
    if (r.status != ProbeStatus::kTimeout) continue;
    const HostId target_host = topo_.rnic(r.target).host;
    if (down_hosts.contains(target_host.value)) {
      cause[i] = AnomalyCause::kHostDown;
      continue;
    }
    // QPN-reset noise: the probe addressed a QPN older than the freshest
    // registration the Controller holds.
    if (const auto info = controller_.comm_info(r.target);
        info && info->qpn != r.target_qpn) {
      cause[i] = AnomalyCause::kQpnReset;
    }
  }

  // ---- step 2: anomalous-RNIC detection from ToR-mesh data (§4.3.2) ----
  enter_stage(1);

  struct RnicStat {
    std::size_t total = 0;
    std::size_t timeouts = 0;
    PercentileWindow ok_responder_delay;
  };
  // Greedy attribution: a dead RNIC's *outgoing* probes also time out and
  // would inflate its innocent peers' timeout ratios. Repeatedly blame the
  // RNIC with the worst ratio, discount every probe involving it, and
  // re-evaluate — peers polluted only by the culprit come out clean.
  std::unordered_set<std::uint32_t> anomalous_rnics;
  std::unordered_map<std::uint32_t, RnicStat> per_rnic;
  for (;;) {
    per_rnic.clear();
    for (std::size_t i = 0; i < records.size(); ++i) {
      const ProbeRecord& r = records[i];
      if (r.kind != ProbeKind::kTorMesh || cause[i].has_value()) continue;
      if (anomalous_rnics.contains(r.prober.value) ||
          anomalous_rnics.contains(r.target.value)) {
        continue;
      }
      RnicStat& st = per_rnic[r.target.value];
      ++st.total;
      if (r.status == ProbeStatus::kTimeout) {
        ++st.timeouts;
      } else {
        st.ok_responder_delay.add(static_cast<double>(r.responder_delay));
      }
    }
    std::uint32_t worst = 0;
    double worst_frac = cfg_.rnic_timeout_threshold;
    bool found = false;
    for (const auto& [rnic, st] : per_rnic) {
      if (st.total < 3) continue;
      const double frac = static_cast<double>(st.timeouts) /
                          static_cast<double>(st.total);
      if (frac > worst_frac) {
        worst = rnic;
        worst_frac = frac;
        found = true;
      }
    }
    if (!found) break;
    anomalous_rnics.insert(worst);
  }

  // Responder-delay evidence per RNIC over ALL completed probes (the greedy
  // loop above excludes blamed RNICs from its stats, but the Fig. 6 filter
  // below needs their delays).
  std::unordered_map<std::uint32_t, PercentileWindow> ok_delay_by_rnic;
  for (const ProbeRecord& r : records) {
    if (r.status == ProbeStatus::kOk) {
      ok_delay_by_rnic[r.target.value].add(
          static_cast<double>(r.responder_delay));
    }
  }

  // Figure 6 false-positive filters: the service occupying the Agent's CPU
  // makes probes to *all* of a host's RNICs time out at once, and/or shows
  // up as huge responder delays on the probes that did complete.
  std::unordered_set<std::uint32_t> cpu_noise_hosts;
  if (cfg_.enable_cpu_noise_filters) {
    std::unordered_map<std::uint32_t, std::size_t> anomalous_per_host;
    for (std::uint32_t r : anomalous_rnics) {
      ++anomalous_per_host[topo_.rnic(RnicId{r}).host.value];
    }
    for (auto it = anomalous_rnics.begin(); it != anomalous_rnics.end();) {
      const HostId h = topo_.rnic(RnicId{*it}).host;
      const bool multi_rnic_simultaneous =
          anomalous_per_host[h.value] >= 2;
      bool starved_responder = false;
      if (auto sit = ok_delay_by_rnic.find(*it);
          sit != ok_delay_by_rnic.end()) {
        auto& win = sit->second;
        starved_responder =
            win.count() > 0 &&
            win.percentile(0.9) >
                static_cast<double>(cfg_.starve_delay_threshold);
      }
      if (multi_rnic_simultaneous || starved_responder) {
        cpu_noise_hosts.insert(h.value);
        it = anomalous_rnics.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Blame window: anomalous now and for the next minute (§5).
  for (std::uint32_t r : anomalous_rnics) {
    rnic_blamed_until_[r] = now + cfg_.rnic_blame_window;
  }
  const auto blamed = [&](RnicId r) {
    if (anomalous_rnics.contains(r.value)) return true;
    const auto it = rnic_blamed_until_.find(r.value);
    return it != rnic_blamed_until_.end() && it->second >= rep.period_start;
  };

  // ---- step 3: attribute the remaining timeouts ----
  enter_stage(2);

  for (std::size_t i = 0; i < records.size(); ++i) {
    const ProbeRecord& r = records[i];
    if (r.status != ProbeStatus::kTimeout || cause[i].has_value()) continue;
    const HostId target_host = topo_.rnic(r.target).host;
    // A starved Agent corrupts probes in BOTH directions: its responder
    // never ACKs (timeouts to it) and its prober thread observes â¥ too
    // late (timeouts from it). Exclude both from network localization.
    if (cpu_noise_hosts.contains(target_host.value) ||
        cpu_noise_hosts.contains(r.prober_host.value)) {
      cause[i] = AnomalyCause::kAgentCpuNoise;
    } else if (blamed(r.target) || blamed(r.prober)) {
      cause[i] = AnomalyCause::kRnicProblem;
    } else {
      cause[i] = AnomalyCause::kSwitchProblem;
    }
  }

  // Tallies + per-cause evidence sets.
  std::unordered_set<std::uint64_t> rnic_timeout_ids;
  std::unordered_set<std::uint64_t> switch_timeout_ids;
  std::vector<const ProbeRecord*> switch_cluster_evidence;
  std::unordered_map<std::uint32_t, std::vector<const ProbeRecord*>>
      switch_service_evidence;  // by service id
  std::unordered_map<std::uint32_t, std::vector<const ProbeRecord*>>
      rnic_evidence;  // by rnic id
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!cause[i].has_value()) continue;
    const ProbeRecord& r = records[i];
    switch (*cause[i]) {
      case AnomalyCause::kHostDown:
        ++rep.timeouts_host_down;
        break;
      case AnomalyCause::kQpnReset:
        ++rep.timeouts_qpn_reset;
        break;
      case AnomalyCause::kAgentCpuNoise:
        ++rep.timeouts_agent_cpu;
        break;
      case AnomalyCause::kRnicProblem:
        ++rep.timeouts_rnic;
        rnic_timeout_ids.insert(r.id);
        rnic_evidence[blamed(r.target) ? r.target.value : r.prober.value]
            .push_back(&r);
        break;
      case AnomalyCause::kSwitchProblem:
        ++rep.timeouts_switch;
        switch_timeout_ids.insert(r.id);
        if (r.kind == ProbeKind::kServiceTracing) {
          switch_service_evidence[r.service.value].push_back(&r);
        } else {
          switch_cluster_evidence.push_back(&r);
        }
        break;
    }
  }

  // ---- emit problems ----
  enter_stage(3);

  for (std::uint32_t h : down_hosts) {
    Problem p;
    p.category = ProblemCategory::kHostDown;
    p.host = HostId{h};
    p.summary = "host " + topo_.host(HostId{h}).name +
                " stopped uploading (host down)";
    rep.problems.push_back(std::move(p));
  }

  for (std::uint32_t r : anomalous_rnics) {
    Problem p;
    p.category = ProblemCategory::kRnicProblem;
    p.rnic = RnicId{r};
    p.host = topo_.rnic(RnicId{r}).host;
    p.anomalous_probes = rnic_evidence[r].size();
    p.summary = "RNIC " + topo_.rnic(RnicId{r}).name +
                " anomalous (ToR-mesh timeout ratio exceeded)";
    rep.problems.push_back(std::move(p));
  }

  for (std::uint32_t h : cpu_noise_hosts) {
    Problem p;
    p.category = ProblemCategory::kAgentCpuNoise;
    p.priority = Priority::kNoise;
    p.host = HostId{h};
    p.summary = "probe noise on " + topo_.host(HostId{h}).name +
                " (service occupies Agent CPU)";
    rep.problems.push_back(std::move(p));
  }

  const auto emit_switch_problem = [&](std::vector<const ProbeRecord*>& ev,
                                       bool from_service, ServiceId svc) {
    if (ev.size() < cfg_.min_anomalies_for_problem) return;
    Problem p;
    p.category = ProblemCategory::kSwitchNetworkProblem;
    p.anomalous_probes = ev.size();
    p.detected_by_service_tracing = from_service;
    p.service = svc;
    vote_paths(ev, p.suspect_links, p.suspect_switches, &p.top_link_votes);
    std::ostringstream os;
    os << "switch network problem (" << ev.size() << " anomalous probes"
       << (from_service ? ", service tracing" : ", cluster monitoring")
       << ")";
    if (!p.suspect_links.empty()) {
      os << ", top suspect link: " << topo_.link(p.suspect_links.front()).name;
    }
    p.summary = os.str();
    rep.problems.push_back(std::move(p));
  };
  emit_switch_problem(switch_cluster_evidence, false, ServiceId{});
  for (auto& [svc, ev] : switch_service_evidence) {
    emit_switch_problem(ev, true, ServiceId{svc});
  }

  // ---- step 4: bottlenecks (high RTT / high processing delay) ----
  enter_stage(4);

  std::vector<const ProbeRecord*> hot_cluster;
  std::unordered_map<std::uint32_t, std::vector<const ProbeRecord*>>
      hot_service;
  std::unordered_map<std::uint32_t, PercentileWindow> host_proc_delay;
  for (const ProbeRecord& r : records) {
    if (r.status != ProbeStatus::kOk) continue;
    if (r.network_rtt > cfg_.high_rtt_threshold) {
      if (r.kind == ProbeKind::kServiceTracing) {
        hot_service[r.service.value].push_back(&r);
      } else {
        hot_cluster.push_back(&r);
      }
    }
    host_proc_delay[topo_.rnic(r.target).host.value].add(
        static_cast<double>(r.responder_delay));
  }
  const auto emit_hot = [&](std::vector<const ProbeRecord*>& ev,
                            bool from_service, ServiceId svc) {
    if (ev.size() < cfg_.min_anomalies_for_problem) return;
    Problem p;
    p.category = ProblemCategory::kHighNetworkRtt;
    p.anomalous_probes = ev.size();
    p.detected_by_service_tracing = from_service;
    p.service = svc;
    vote_paths(ev, p.suspect_links, p.suspect_switches, &p.top_link_votes);
    std::ostringstream os;
    os << "network congestion: " << ev.size() << " probes above RTT threshold"
       << (from_service ? " (service tracing)" : " (cluster monitoring)");
    if (!p.suspect_links.empty()) {
      os << ", hottest link: " << topo_.link(p.suspect_links.front()).name;
    }
    p.summary = os.str();
    rep.problems.push_back(std::move(p));
  };
  emit_hot(hot_cluster, false, ServiceId{});
  for (auto& [svc, ev] : hot_service) emit_hot(ev, true, ServiceId{svc});

  for (auto& [h, win] : host_proc_delay) {
    if (cpu_noise_hosts.contains(h)) continue;  // already reported as noise
    // Tail-based: an overloaded host shows in its P90 even when healthy
    // probes to its other RNICs dilute the median.
    if (win.count() >= cfg_.min_anomalies_for_problem &&
        win.percentile(0.9) >
            static_cast<double>(cfg_.high_proc_delay_threshold)) {
      Problem p;
      p.category = ProblemCategory::kHighProcessingDelay;
      p.host = HostId{h};
      p.anomalous_probes = win.count();
      std::ostringstream os;
      os << "end-host bottleneck on " << topo_.host(HostId{h}).name
         << ": p90 processing delay "
         << win.percentile(0.9) / 1e6 << " ms";
      p.summary = os.str();
      rep.problems.push_back(std::move(p));
    }
  }

  // QPN-reset noise visibility (not a problem, but operators see it).
  if (rep.timeouts_qpn_reset > 0) {
    Problem p;
    p.category = ProblemCategory::kQpnResetNoise;
    p.priority = Priority::kNoise;
    p.anomalous_probes = rep.timeouts_qpn_reset;
    p.summary = "QPN-reset probe noise (stale pinglists after Agent restart)";
    rep.problems.push_back(std::move(p));
  }

  // ---- step 5: SLA tracking ----
  enter_stage(5);

  std::vector<const ProbeRecord*> cluster_records;
  std::unordered_map<std::uint32_t, std::vector<const ProbeRecord*>>
      service_records;
  for (const ProbeRecord& r : records) {
    if (r.kind == ProbeKind::kServiceTracing) {
      service_records[r.service.value].push_back(&r);
    } else {
      cluster_records.push_back(&r);
    }
  }
  rep.cluster_sla =
      make_sla(cluster_records, rnic_timeout_ids, switch_timeout_ids);
  for (auto& [svc, recs] : service_records) {
    rep.service_slas.emplace_back(
        ServiceId{svc}, make_sla(recs, rnic_timeout_ids, switch_timeout_ids));
  }

  // ---- step 6: impact (needs the service networks from this period) ----
  enter_stage(6);

  // Service network = every link/rnic/host the service's tracing probes
  // touched this period.
  struct ServiceNet {
    std::unordered_set<std::uint32_t> links;
    std::unordered_set<std::uint32_t> rnics;
    std::unordered_set<std::uint32_t> hosts;
  };
  std::unordered_map<std::uint32_t, ServiceNet> nets;
  for (const ProbeRecord& r : records) {
    if (r.kind != ProbeKind::kServiceTracing) continue;
    ServiceNet& n = nets[r.service.value];
    n.rnics.insert(r.prober.value);
    n.rnics.insert(r.target.value);
    n.hosts.insert(topo_.rnic(r.prober).host.value);
    n.hosts.insert(topo_.rnic(r.target).host.value);
    if (r.path_known) {
      for (const routing::Path* p : {&r.fwd_path, &r.rev_path}) {
        for (LinkId l : p->links) n.links.insert(l.value);
      }
    }
  }

  for (Problem& p : rep.problems) {
    if (p.priority == Priority::kNoise) continue;
    // Find a service whose network this problem touches.
    ServiceId affected;
    if (p.detected_by_service_tracing) {
      affected = p.service;
    } else {
      for (const auto& [svc, net] : nets) {
        const bool rnic_hit =
            p.rnic.valid() && net.rnics.contains(p.rnic.value);
        // Host overlap only applies to host-scoped problems (host down, CPU
        // bottleneck). An RNIC problem on a worker host whose OTHER RNIC
        // serves the job is still outside the service network (=> P2).
        const bool host_hit = !p.rnic.valid() && p.host.valid() &&
                              net.hosts.contains(p.host.value);
        bool link_hit = false;
        for (LinkId l : p.suspect_links) {
          if (net.links.contains(l.value)) {
            link_hit = true;
            break;
          }
        }
        if (rnic_hit || host_hit || link_hit) {
          affected = ServiceId{svc};
          break;
        }
      }
    }
    if (!affected.valid()) {
      p.priority = Priority::kP2;  // outside every service network
      continue;
    }
    p.in_service_network = true;
    p.service = affected;
    // Severe metric degradation => P0; otherwise P1 (fix on benefit).
    double metric = 1.0;
    for (const ServiceBinding& b : services_) {
      if (b.id == affected) metric = b.metric();
    }
    p.priority = metric < cfg_.degradation_threshold ? Priority::kP0
                                                     : Priority::kP1;
  }

  enter_stage(-1);
  telemetry::tracer().end_span(period_span);

  metrics_.timeouts_by_cause[static_cast<int>(AnomalyCause::kHostDown)].inc(
      rep.timeouts_host_down);
  metrics_.timeouts_by_cause[static_cast<int>(AnomalyCause::kQpnReset)].inc(
      rep.timeouts_qpn_reset);
  metrics_.timeouts_by_cause[static_cast<int>(AnomalyCause::kAgentCpuNoise)]
      .inc(rep.timeouts_agent_cpu);
  metrics_.timeouts_by_cause[static_cast<int>(AnomalyCause::kRnicProblem)]
      .inc(rep.timeouts_rnic);
  metrics_.timeouts_by_cause[static_cast<int>(AnomalyCause::kSwitchProblem)]
      .inc(rep.timeouts_switch);
  for (const Problem& p : rep.problems) {
    metrics_.problems_by_category[static_cast<int>(p.category)].inc();
    metrics_.problems_by_priority[static_cast<int>(p.priority)].inc();
  }

  history_.push_back(std::move(rep));
  while (history_.size() > cfg_.history_limit) history_.pop_front();
  return history_.back();
}

bool Analyzer::network_innocent(ServiceId service) const {
  const PeriodReport* rep = last_report();
  if (rep == nullptr) return true;
  for (const Problem& p : rep->problems) {
    if ((p.priority == Priority::kP0 || p.priority == Priority::kP1) &&
        p.service == service) {
      return false;
    }
  }
  return true;
}

}  // namespace rpm::core
