#include "core/analyzer.h"

#include <stdexcept>
#include <utility>

#include "prof/prof.h"
#include "telemetry/trace.h"

namespace rpm::core {

Analyzer::Analyzer(const topo::Topology& topo, const Controller& controller,
                   sim::Scheduler& sched, AnalyzerConfig cfg)
    : topo_(topo), sched_(sched), ingest_cfg_(cfg.ingest) {
  if (cfg.period <= 0) {
    throw std::invalid_argument("AnalyzerConfig: period must be > 0");
  }
  cfg.ingest.validate();
  // Order matters for telemetry output stability: the sink registers its
  // ingest-side series first (as the pre-split Analyzer constructor did),
  // then the core registers the pipeline series.
  sink_ = make_sink();
  core_ = std::make_unique<AnalysisCore>(topo, &controller, std::move(cfg));
}

std::unique_ptr<IngestSink> Analyzer::make_sink() {
  IngestHooks hooks;
  // Dereferences core_ at call time; uploads only arrive after construction
  // completes (and never while a crashed sink is being rebuilt).
  hooks.host_alive = [this](HostId h) {
    core_->note_host_alive(h, sched_.now());
  };
  hooks.tap = &tap_;
  return make_ingest_sink(ingest_cfg_, std::move(hooks));
}

void Analyzer::ingest_sketch(sketch::SketchReport&& rep) {
  if (outage_) return;  // a blacked-out Analyzer hears nothing
  core_->ingest_sketch(std::move(rep));
}

void Analyzer::start() {
  if (period_task_) return;
  period_task_ = std::make_unique<sim::PeriodicTask>(
      sched_, config().period, [this] {
        if (!outage_) analyze_now();
      });
  period_task_->start(config().period);
}

void Analyzer::stop() {
  if (period_task_) period_task_->cancel();
  period_task_.reset();
}

void Analyzer::set_outage(bool outage) {
  if (outage_ == outage) return;
  outage_ = outage;
  sink_->set_paused(outage);
  if (outage) {
    telemetry::tracer().instant("analyzer-outage-begin", "control");
    return;
  }
  telemetry::tracer().instant("analyzer-outage-end", "control");
  const TimeNs now = sched_.now();
  core_->forgive_silence(now);
  core_->set_period_boundary(now);
}

const PeriodReport& Analyzer::analyze_now() {
  // Watchdog over the whole close: drain -> analyze -> hooks -> checkpoint.
  prof::PeriodCloseScope close_scope;
  const TimeNs now = sched_.now();
  std::vector<ProbeRecord> records = sink_->drain_period();
  // The summary is drained unconditionally so a stray test summary can
  // never leak across a sketch-mode flip.
  const sketch::HostSummary summary = sink_->drain_summary();
  const PeriodReport& rep =
      core_->analyze_period(std::move(records), summary, now, fed_);
  if (period_hook_) period_hook_(rep, *core_->last_diagnosis());
  if (journal_ != nullptr) save_checkpoint();
  return rep;
}

void Analyzer::attach_journal(StateJournal* journal, std::string role) {
  journal_ = journal;
  role_ = role;
  core_->attach_journal(journal, std::move(role));
}

void Analyzer::save_checkpoint() {
  AnalyzerCheckpoint cp;
  core_->fill_checkpoint(cp);
  cp.ingest = sink_->checkpoint();
  if (checkpoint_hook_) checkpoint_hook_(cp);
  journal_->save_checkpoint(role_, cp);
}

void Analyzer::crash() {
  telemetry::tracer().instant("analyzer-crash", "control");
  outage_ = true;
  // Everything in process memory dies: buffered records, the folded
  // summary, dedup windows, pipeline history. Rebuild the sink empty (the
  // old one joins its workers on destruction) and hold it paused until
  // restore_from_journal().
  sink_ = make_sink();
  sink_->set_paused(true);
  core_->reset_volatile();
}

bool Analyzer::restore_from_journal() {
  std::optional<AnalyzerCheckpoint> cp;
  if (journal_ != nullptr) cp = journal_->load_checkpoint(role_);
  if (cp.has_value()) {
    core_->restore(*cp);
    sink_->restore(cp->ingest);
  }
  outage_ = false;
  sink_->set_paused(false);
  telemetry::tracer().instant("analyzer-restart", "control");
  const TimeNs now = sched_.now();
  // Same contract as outage recovery: the downtime never reads as host
  // silence, and the next period spans from the restart, not the crash.
  core_->forgive_silence(now);
  core_->set_period_boundary(now);
  return cp.has_value();
}

}  // namespace rpm::core
