#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>

namespace rpm::obs {

const char* probe_event_name(ProbeEventKind k) {
  switch (k) {
    case ProbeEventKind::kEnqueued: return "agent-enqueue";
    case ProbeEventKind::kVerbsPost: return "verbs-post";
    case ProbeEventKind::kSendCqe: return "send-cqe(2)";
    case ProbeEventKind::kHop: return "fabric-hop";
    case ProbeEventKind::kFabricDrop: return "fabric-drop";
    case ProbeEventKind::kResponderRecv: return "responder-recv-cqe(3)";
    case ProbeEventKind::kResponderWake: return "responder-wakeup";
    case ProbeEventKind::kAckPosted: return "ack1-posted";
    case ProbeEventKind::kAckSendCqe: return "ack1-send-cqe(4)";
    case ProbeEventKind::kProberAckCqe: return "prober-ack-cqe(5)";
    case ProbeEventKind::kProberApp: return "prober-app(6)";
    case ProbeEventKind::kAck2Recv: return "ack2-recv";
    case ProbeEventKind::kCompleted: return "completed";
    case ProbeEventKind::kTimedOut: return "timed-out";
    case ProbeEventKind::kOutboxFlush: return "outbox-flush";
    case ProbeEventKind::kTransportAttempt: return "transport-attempt";
    case ProbeEventKind::kRequeued: return "upload-requeued";
    case ProbeEventKind::kUploadDropped: return "upload-dropped";
    case ProbeEventKind::kAnalyzerIngest: return "analyzer-ingest";
    case ProbeEventKind::kVerdict: return "analyzer-verdict";
    case ProbeEventKind::kLeaseExpired: return "lease-expired";
    case ProbeEventKind::kReregistered: return "reregistered";
    case ProbeEventKind::kSpilled: return "spill-ring-enter";
    case ProbeEventKind::kSpillDrained: return "spill-ring-drain";
    case ProbeEventKind::kSketchFlush: return "sketch-flush";
    case ProbeEventKind::kSketchMerge: return "sketch-merge";
    case ProbeEventKind::kDigestFlush: return "digest-flush";
    case ProbeEventKind::kDigestMerge: return "digest-merge";
    case ProbeEventKind::kFailover: return "controller-failover";
    case ProbeEventKind::kPeriodClose: return "period-close";
    case ProbeEventKind::kBudgetOverrun: return "budget-overrun";
  }
  return "?";
}

namespace {

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

void FlightRecorder::enable(FlightRecorderConfig cfg, ClockFn clock) {
  cfg_ = cfg;
  if (cfg_.capacity == 0) cfg_.capacity = 1;
  clock_ = std::move(clock);
  rng_ = Rng(cfg_.seed);
  fallback_tick_ = 0;
  ring_.assign(cfg_.capacity, ProbeTimeline{});
  next_slot_ = 0;
  index_.clear();
  bindings_.clear();
  binding_order_.clear();
  markers_.clear();
  seen_ = sampled_ = evicted_ = dropped_ = 0;
  auto& reg = telemetry::registry();
  m_sampled_ = reg.counter("rpm_obs_probes_sampled_total",
                           "Probes whose timeline the flight recorder kept");
  m_events_ = reg.counter("rpm_obs_events_total",
                          "Timeline events recorded across all probes");
  m_evicted_ = reg.counter("rpm_obs_timelines_evicted_total",
                           "Sampled timelines evicted by ring capacity");
  m_dropped_ = reg.counter(
      "rpm_obs_events_dropped_total",
      "Events discarded by the per-probe event cap");
  enabled_ = true;
}

void FlightRecorder::disable() {
  enabled_ = false;
  clock_ = {};
  ring_.clear();
  ring_.shrink_to_fit();
  index_.clear();
  bindings_.clear();
  binding_order_.clear();
  markers_.clear();
  next_slot_ = 0;
}

void FlightRecorder::marker_slow(ProbeEventKind k, std::uint64_t a,
                                 std::uint64_t b) {
  Marker m;
  m.t = stamp();
  m.kind = k;
  m.a = a;
  m.b = b;
  markers_.push_back(m);
  while (markers_.size() > cfg_.max_markers) markers_.pop_front();
}

TimeNs FlightRecorder::stamp() {
  // Without a clock, fall back to a deterministic tick — never wall time,
  // which would break the byte-identical-histories determinism guarantee.
  return clock_ ? clock_() : ++fallback_tick_;
}

bool FlightRecorder::begin_probe(std::uint64_t probe_id,
                                 const char* kind_name, std::uint64_t t1) {
  if (!enabled_) return false;
  ++seen_;
  if (!rng_.chance(cfg_.sample_rate)) return false;
  ++sampled_;
  m_sampled_.inc();
  const std::size_t slot = next_slot_;
  next_slot_ = (next_slot_ + 1) % ring_.size();
  ProbeTimeline& tl = ring_[slot];
  if (tl.probe_id != 0) {
    index_.erase(tl.probe_id);
    ++evicted_;
    m_evicted_.inc();
  }
  tl.probe_id = probe_id;
  tl.kind_name = kind_name != nullptr ? kind_name : "";
  tl.events.clear();
  index_[probe_id] = slot;
  record_slow(probe_id, ProbeEventKind::kEnqueued, t1, 0);
  return true;
}

void FlightRecorder::record_slow(std::uint64_t probe_id, ProbeEventKind k,
                                 std::uint64_t a, std::uint64_t b) {
  const auto it = index_.find(probe_id);
  if (it == index_.end()) return;  // never sampled, or evicted since
  ProbeTimeline& tl = ring_[it->second];
  if (tl.events.size() >= cfg_.max_events_per_probe) {
    ++dropped_;
    m_dropped_.inc();
    return;
  }
  TimelineEvent e;
  e.t = stamp();
  e.kind = k;
  e.a = a;
  e.b = b;
  tl.events.push_back(e);
  m_events_.inc();
}

void FlightRecorder::bind_batch(std::uint64_t owner_tag,
                                std::uint64_t chan_seq,
                                std::vector<std::uint64_t> probe_ids) {
  if (!enabled_ || probe_ids.empty()) return;
  const auto key = std::make_pair(owner_tag, chan_seq);
  if (!bindings_.contains(key)) {
    binding_order_.push_back(key);
    while (binding_order_.size() > cfg_.max_batch_bindings) {
      bindings_.erase(binding_order_.front());
      binding_order_.pop_front();
    }
  }
  bindings_[key].probe_ids = std::move(probe_ids);
}

void FlightRecorder::batch_event(std::uint64_t owner_tag,
                                 std::uint64_t chan_seq, ProbeEventKind k,
                                 std::uint64_t a) {
  if (!enabled_) return;
  const auto it = bindings_.find(std::make_pair(owner_tag, chan_seq));
  if (it == bindings_.end()) return;
  for (std::uint64_t pid : it->second.probe_ids) record_slow(pid, k, a, 0);
}

void FlightRecorder::unbind_batch(std::uint64_t owner_tag,
                                  std::uint64_t chan_seq) {
  if (!enabled_) return;
  bindings_.erase(std::make_pair(owner_tag, chan_seq));
  // binding_order_ keeps a stale key until it cycles out; erase is idempotent.
}

const ProbeTimeline* FlightRecorder::timeline(std::uint64_t probe_id) const {
  const auto it = index_.find(probe_id);
  return it == index_.end() ? nullptr : &ring_[it->second];
}

std::vector<const ProbeTimeline*> FlightRecorder::timelines() const {
  std::vector<const ProbeTimeline*> out;
  out.reserve(index_.size());
  // Oldest first: walk the ring from next_slot_ (the next eviction victim).
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const ProbeTimeline& tl = ring_[(next_slot_ + i) % ring_.size()];
    if (tl.probe_id != 0 && index_.contains(tl.probe_id)) out.push_back(&tl);
  }
  return out;
}

std::string FlightRecorder::to_json() const {
  std::string out = "{\"config\":{\"sample_rate\":";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", cfg_.sample_rate);
  out += buf;
  out += ",\"capacity\":" + std::to_string(cfg_.capacity) + "}";
  out += ",\"probes_seen\":" + std::to_string(seen_);
  out += ",\"probes_sampled\":" + std::to_string(sampled_);
  out += ",\"evicted\":" + std::to_string(evicted_);
  out += ",\"dropped_events\":" + std::to_string(dropped_);
  if (!markers_.empty()) {
    // Process-level markers (period closes, budget overruns). Omitted when
    // empty so dumps from runs without a profiler stay unchanged.
    out += ",\"markers\":[";
    bool mfirst = true;
    for (const Marker& m : markers_) {
      if (!mfirst) out += ',';
      mfirst = false;
      out += "{\"t\":" + std::to_string(m.t) + ",\"event\":\"";
      append_json_escaped(out, probe_event_name(m.kind));
      out += "\",\"a\":" + std::to_string(m.a) +
             ",\"b\":" + std::to_string(m.b) + '}';
    }
    out += ']';
  }
  out += ",\"timelines\":[";
  bool first = true;
  for (const ProbeTimeline* tl : timelines()) {
    if (!first) out += ',';
    first = false;
    out += "{\"probe_id\":" + std::to_string(tl->probe_id) + ",\"kind\":\"";
    append_json_escaped(out, tl->kind_name);
    out += "\",\"closed\":";
    out += tl->closed() ? "true" : "false";
    out += ",\"events\":[";
    bool efirst = true;
    for (const TimelineEvent& e : tl->events) {
      if (!efirst) out += ',';
      efirst = false;
      out += "{\"t\":" + std::to_string(e.t) + ",\"event\":\"";
      append_json_escaped(out, probe_event_name(e.kind));
      out += "\",\"a\":" + std::to_string(e.a) +
             ",\"b\":" + std::to_string(e.b) + '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string FlightRecorder::chrome_events() const {
  // Trace Event Format 'X' spans, ts/dur in microseconds. pid 2 keeps the
  // probe tracks separate from the telemetry tracer's span track (pid 1);
  // tid = ring slot gives every sampled probe its own row. The probe's whole
  // life is the outer span; each layer crossing nests inside it (chrome
  // nests same-tid 'X' events by containment).
  std::string out;
  char buf[64];
  const auto emit = [&](const char* name, const char* args_kind,
                        std::uint64_t probe_id, std::size_t tid, TimeNs ts,
                        TimeNs dur) {
    if (!out.empty()) out += ',';
    out += "{\"name\":\"";
    append_json_escaped(out, name);
    out += "\",\"cat\":\"probe\",\"ph\":\"X\",\"pid\":2,\"tid\":" +
           std::to_string(tid);
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(ts) / 1e3,
                  static_cast<double>(dur) / 1e3);
    out += buf;
    out += ",\"args\":{\"probe_id\":" + std::to_string(probe_id) +
           ",\"kind\":\"";
    append_json_escaped(out, args_kind);
    out += "\"}}";
  };
  for (const ProbeTimeline* tl : timelines()) {
    if (tl->events.empty()) continue;
    const auto it = index_.find(tl->probe_id);
    const std::size_t tid = it == index_.end() ? 0 : it->second;
    const TimeNs begin = tl->events.front().t;
    const TimeNs end = tl->events.back().t;
    std::string outer = "probe ";
    outer += std::to_string(tl->probe_id);
    emit(outer.c_str(), tl->kind_name, tl->probe_id, tid, begin,
         std::max<TimeNs>(end - begin, 1));
    for (std::size_t i = 1; i < tl->events.size(); ++i) {
      const TimelineEvent& prev = tl->events[i - 1];
      const TimelineEvent& cur = tl->events[i];
      emit(probe_event_name(cur.kind), tl->kind_name, tl->probe_id, tid,
           prev.t, std::max<TimeNs>(cur.t - prev.t, 1));
    }
  }
  return out;
}

FlightRecorder& recorder() {
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

}  // namespace rpm::obs
