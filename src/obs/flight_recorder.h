// Probe flight recorder: per-probe causal timelines across every layer.
//
// The Analyzer's verdicts aggregate thousands of probes; when one of them
// misbehaves, operators need the probe's *life story* — when the Agent
// enqueued it, when verbs posted it, the RNIC timestamps ①..⑥ of Figure 4,
// every switch hop the fabric routed it over (and where it died, if it
// died), the responder's wakeup, which UploadBatch carried its record, each
// transport delivery attempt, and which Analyzer shard ingested it. The
// flight recorder captures exactly that: a fixed-capacity ring of sampled
// probe timelines, correlated by probe id threaded through `ProbeRecord`,
// the fabric `Datagram` (`trace_id`), and the upload transport.
//
// Design constraints:
//  * Zero cost when disabled: every record call is one branch on a plain
//    bool; no allocation, no hashing, no clock read (bench:
//    BM_FlightRecorderProbePath/0).
//  * Deterministic: the sampling decision uses the recorder's own seeded
//    Rng (never wall clock), so same-seed simulations stay byte-identical.
//  * Bounded: `capacity` timelines (oldest evicted) with a per-probe event
//    cap; batch bindings (transport correlation) are capped the same way.
//
// Rendering: `to_json()` for dumps, `chrome_events()` for a per-probe track
// (nested 'X' spans) embeddable in the telemetry tracer's chrome://tracing
// output via Tracer::chrome_json(extra_events).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "telemetry/metrics.h"

namespace rpm::obs {

/// One layer-crossing in a probe's life. `a`/`b` are kind-specific details
/// (device-clock timestamps, link ids, batch seqs, ...), documented per kind.
enum class ProbeEventKind : std::uint8_t {
  kEnqueued,         // Agent created the probe; a = ① prober host clock
  kVerbsPost,        // ibv_post_send issued on the UD QP
  kSendCqe,          // ② prober RNIC send CQE; a = prober RNIC clock
  kHop,              // fabric hop traversed; a = link id, b = queue delay ns
  kFabricDrop,       // dropped in the fabric; a = DropReason, b = link id
  kResponderRecv,    // ③ responder RNIC recv CQE; a = responder RNIC clock
  kResponderWake,    // responder Agent scheduled; a = process wakeup delay
  kAckPosted,        // responder posted ACK1
  kAckSendCqe,       // ④ ACK1 send CQE; a = responder RNIC clock (ACK2 goes out)
  kProberAckCqe,     // ⑤ prober RNIC recv CQE of ACK1; a = prober RNIC clock
  kProberApp,        // ⑥ prober application sees ACK1; a = prober host clock
  kAck2Recv,         // ACK2 arrived; a = responder delay ④-③
  kCompleted,        // record finalized OK; a = network RTT, b = prober delay
  kTimedOut,         // record finalized as timeout
  kOutboxFlush,      // record left in an UploadBatch; a = batch seq, b = size
  kTransportAttempt, // carrying batch transmitted; a = attempt number
  kRequeued,         // batch expired, Agent re-queued it; a = requeue count
  kUploadDropped,    // carrying batch dropped for good (cap / host down)
  kAnalyzerIngest,   // record landed in an ingest shard; a = shard index
  kVerdict,          // Analyzer attributed a cause; a = AnomalyCause
  kLeaseExpired,     // Agent's Controller lease lapsed while record waited
  kReregistered,     // Agent re-registered after a lost lease
  kSpilled,          // carrying batch parked in spill ring; a = batch seq
  kSpillDrained,     // batch left spill ring on reconnect; a = batch seq
  kSketchFlush,      // link sketches flushed into a SketchReport;
                     // a = report seq, b = links in the report
  kSketchMerge,      // Analyzer merged a SketchReport; a = seq, b = links
  kDigestFlush,      // PodAnalyzer flushed a PodDigest; a = seq, b = problems
  kDigestMerge,      // GlobalAnalyzer merged a PodDigest; a = pod, b = seq
  kFailover,         // standby Controller promoted; a = new epoch, b = member
  kPeriodClose,      // Analyzer period close finished; a = wall ns,
                     // b = prof::Stage index of the close's top-cost stage
  kBudgetOverrun,    // period close exceeded the profiler's wall budget;
                     // a = wall ns, b = top-cost prof::Stage index
};

const char* probe_event_name(ProbeEventKind k);

struct TimelineEvent {
  TimeNs t = 0;  // recorder clock (simulated time when a clock is installed)
  ProbeEventKind kind{};
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

struct ProbeTimeline {
  std::uint64_t probe_id = 0;
  const char* kind_name = "";  // static string (probe_kind_name)
  std::vector<TimelineEvent> events;

  [[nodiscard]] bool closed() const {
    for (const TimelineEvent& e : events) {
      if (e.kind == ProbeEventKind::kCompleted ||
          e.kind == ProbeEventKind::kTimedOut) {
        return true;
      }
    }
    return false;
  }
  [[nodiscard]] const TimelineEvent* find(ProbeEventKind k) const {
    for (const TimelineEvent& e : events) {
      if (e.kind == k) return &e;
    }
    return nullptr;
  }
};

struct FlightRecorderConfig {
  double sample_rate = 0.0;            // P(record) per probe, drawn at birth
  std::size_t capacity = 4096;         // ring slots; oldest timeline evicted
  std::size_t max_events_per_probe = 96;
  std::size_t max_batch_bindings = 1024;
  std::size_t max_markers = 1024;      // process-level marker FIFO cap
  std::uint64_t seed = 0x0b5f11447ULL; // sampling Rng seed (determinism)
};

/// A process-level (not per-probe) event: period closes, budget overruns.
/// Markers bypass sampling — they never touch the sampling Rng, so emitting
/// one cannot perturb which probes get recorded.
struct Marker {
  TimeNs t = 0;
  ProbeEventKind kind{};
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class FlightRecorder {
 public:
  using ClockFn = std::function<TimeNs()>;

  /// Turn recording on. Re-enabling resets all state (timelines, sampling
  /// Rng) so back-to-back same-seed runs record identically. Without a
  /// clock, events are stamped with a deterministic internal tick.
  void enable(FlightRecorderConfig cfg, ClockFn clock = {});
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] const FlightRecorderConfig& config() const { return cfg_; }

  /// Sampling decision at probe birth; true iff this probe's timeline is
  /// recorded. Call once per probe — the result must be cached by the
  /// caller (ProbeRecord::flight_sampled) so later layers pay one branch.
  /// `t1` rides onto the opening kEnqueued event (① prober host clock).
  bool begin_probe(std::uint64_t probe_id, const char* kind_name,
                   std::uint64_t t1 = 0);

  /// Append an event to a sampled probe's timeline. One branch when the
  /// recorder is disabled; unknown probe ids are ignored (evicted slots).
  void record(std::uint64_t probe_id, ProbeEventKind k, std::uint64_t a = 0,
              std::uint64_t b = 0) {
    if (!enabled_) return;
    record_slow(probe_id, k, a, b);
  }
  [[nodiscard]] bool tracking(std::uint64_t probe_id) const {
    return enabled_ && index_.contains(probe_id);
  }

  /// Append a process-level marker (kPeriodClose, kBudgetOverrun, ...).
  /// One branch when disabled; no sampling decision, no Rng draw. Bounded
  /// FIFO: oldest markers fall off past `max_markers`.
  void marker(ProbeEventKind k, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (!enabled_) return;
    marker_slow(k, a, b);
  }
  [[nodiscard]] const std::deque<Marker>& markers() const { return markers_; }

  // ---- transport correlation ----
  // A flushed UploadBatch carries many records; the Agent binds the sampled
  // probe ids among them to the carrying channel message, keyed by
  // (owner tag = host id, channel seq). Transport-level events then fan out
  // to every bound timeline.

  void bind_batch(std::uint64_t owner_tag, std::uint64_t chan_seq,
                  std::vector<std::uint64_t> probe_ids);
  void batch_event(std::uint64_t owner_tag, std::uint64_t chan_seq,
                   ProbeEventKind k, std::uint64_t a = 0);
  void unbind_batch(std::uint64_t owner_tag, std::uint64_t chan_seq);

  // ---- inspection & rendering ----

  [[nodiscard]] const ProbeTimeline* timeline(std::uint64_t probe_id) const;
  /// Every live timeline, oldest first.
  [[nodiscard]] std::vector<const ProbeTimeline*> timelines() const;

  /// {"config":{...},"sampled":N,...,"timelines":[...]}
  [[nodiscard]] std::string to_json() const;
  /// Comma-joined chrome://tracing event objects (no surrounding array):
  /// one track (pid 2, tid = ring slot) per sampled probe, the probe's whole
  /// life as an outer 'X' span with one nested 'X' span per layer crossing.
  /// Feed to telemetry::Tracer::chrome_json(extra_events).
  [[nodiscard]] std::string chrome_events() const;

  [[nodiscard]] std::uint64_t probes_sampled() const { return sampled_; }
  [[nodiscard]] std::uint64_t probes_seen() const { return seen_; }
  [[nodiscard]] std::uint64_t evicted() const { return evicted_; }
  [[nodiscard]] std::uint64_t dropped_events() const { return dropped_; }
  [[nodiscard]] std::size_t live_timelines() const { return index_.size(); }

 private:
  void record_slow(std::uint64_t probe_id, ProbeEventKind k, std::uint64_t a,
                   std::uint64_t b);
  void marker_slow(ProbeEventKind k, std::uint64_t a, std::uint64_t b);
  [[nodiscard]] TimeNs stamp();

  bool enabled_ = false;
  FlightRecorderConfig cfg_;
  ClockFn clock_;
  Rng rng_{1};
  TimeNs fallback_tick_ = 0;

  std::vector<ProbeTimeline> ring_;
  std::size_t next_slot_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // probe id -> slot

  struct Binding {
    std::vector<std::uint64_t> probe_ids;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, Binding> bindings_;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> binding_order_;
  std::deque<Marker> markers_;

  std::uint64_t seen_ = 0;
  std::uint64_t sampled_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t dropped_ = 0;

  telemetry::Counter m_sampled_, m_events_, m_evicted_, m_dropped_;
};

/// Process-wide recorder used by the built-in instrumentation (Agent, fabric,
/// verbs, Analyzer) — mirrors telemetry::tracer().
FlightRecorder& recorder();

}  // namespace rpm::obs
