// Diagnosis explainability: evidence chains behind every Analyzer verdict.
//
// A `Problem`, an SLA violation, or a "network innocent" call is only as
// trustworthy as the evidence it rests on. Each period the Analyzer writes a
// `DiagnosisLog`: one `EvidenceChain` per verdict recording
//
//   * the input probe ids (capped sample + exact total),
//   * the Algorithm 1 vote tally per link and per switch,
//   * every threshold compared (configured value, observed value, outcome),
//   * the timeout-triage branch taken (§4.3.1: host down / QPN reset /
//     Agent-CPU noise / RNIC / switch).
//
// `Analyzer::explain(problem_id)` renders a chain as structured JSON;
// chains also cross-reference the flight recorder — any probe id listed
// here that was sampled has a full per-hop timeline in
// obs::recorder().
//
// This module is deliberately below src/core: plain ids only, no topology
// or record types, so fabric-/transport-level tooling can produce chains
// too.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace rpm::obs {

/// One threshold comparison backing a verdict.
struct ThresholdCheck {
  std::string name;        // AnalyzerConfig field (or derived quantity) name
  double threshold = 0.0;  // configured value
  double observed = 0.0;   // what this period measured
  bool exceeded = false;   // did the comparison trip
};

/// Vote tally entry (Algorithm 1): a link or switch id and its vote count.
struct VoteCount {
  std::uint32_t id = 0;
  std::size_t votes = 0;
};

struct EvidenceChain {
  std::uint64_t id = 0;          // EvidenceRef target, unique per Analyzer
  std::uint64_t problem_id = 0;  // 0 for non-Problem verdicts (SLA, innocent)
  std::string verdict;           // "switch-network-problem", "sla-violation",
                                 // "network-innocent", ...
  std::string triage_branch;     // §4.3.1 branch taken, human-readable
  std::uint32_t service = 0;     // service-scoped verdicts (0 = cluster)
  std::vector<std::uint64_t> probe_ids;  // input probes (capped sample)
  std::size_t total_probes = 0;          // exact count before the cap
  std::vector<VoteCount> link_votes;     // Algorithm 1, descending
  std::vector<VoteCount> switch_votes;   // Algorithm 1, descending
  std::vector<ThresholdCheck> thresholds;
  /// Recorder-driven auto-triage: where the evidence probes actually died,
  /// aggregated from their sampled flight timelines — e.g.
  /// "fabric-drop:corrupted@link42" or "timed-out:no-fabric-drop-observed"
  /// with a count each. Empty (and absent from the JSON) when the flight
  /// recorder is disabled or no evidence probe was sampled.
  std::vector<std::pair<std::string, std::uint64_t>> drop_sites;
  std::string summary;
};

/// Everything one analysis period concluded, with receipts.
struct DiagnosisLog {
  TimeNs period_start = 0;
  TimeNs period_end = 0;
  std::vector<EvidenceChain> chains;

  [[nodiscard]] const EvidenceChain* find(std::uint64_t evidence_id) const;
  [[nodiscard]] const EvidenceChain* find_problem(
      std::uint64_t problem_id) const;
};

/// How many probe ids a chain retains verbatim; `total_probes` keeps the
/// exact count when the evidence set is larger.
inline constexpr std::size_t kEvidenceProbeIdCap = 32;

std::string to_json(const ThresholdCheck& t);
std::string to_json(const EvidenceChain& c);
std::string to_json(const DiagnosisLog& log);

}  // namespace rpm::obs
