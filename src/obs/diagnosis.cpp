#include "obs/diagnosis.h"

#include <cmath>
#include <cstdio>

namespace rpm::obs {

namespace {

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string fmt_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void append_votes(std::string& out, const std::vector<VoteCount>& votes) {
  out += '[';
  bool first = true;
  for (const VoteCount& v : votes) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":" + std::to_string(v.id) +
           ",\"votes\":" + std::to_string(v.votes) + '}';
  }
  out += ']';
}

}  // namespace

const EvidenceChain* DiagnosisLog::find(std::uint64_t evidence_id) const {
  for (const EvidenceChain& c : chains) {
    if (c.id == evidence_id) return &c;
  }
  return nullptr;
}

const EvidenceChain* DiagnosisLog::find_problem(
    std::uint64_t problem_id) const {
  if (problem_id == 0) return nullptr;
  for (const EvidenceChain& c : chains) {
    if (c.problem_id == problem_id) return &c;
  }
  return nullptr;
}

std::string to_json(const ThresholdCheck& t) {
  std::string out = "{\"name\":\"";
  append_json_escaped(out, t.name);
  out += "\",\"threshold\":" + fmt_double(t.threshold) +
         ",\"observed\":" + fmt_double(t.observed) + ",\"exceeded\":";
  out += t.exceeded ? "true" : "false";
  out += '}';
  return out;
}

std::string to_json(const EvidenceChain& c) {
  std::string out = "{\"evidence_id\":" + std::to_string(c.id);
  if (c.problem_id != 0) {
    out += ",\"problem_id\":" + std::to_string(c.problem_id);
  }
  out += ",\"verdict\":\"";
  append_json_escaped(out, c.verdict);
  out += "\",\"triage_branch\":\"";
  append_json_escaped(out, c.triage_branch);
  out += '"';
  if (c.service != 0) out += ",\"service\":" + std::to_string(c.service);
  out += ",\"total_probes\":" + std::to_string(c.total_probes);
  out += ",\"probe_ids\":[";
  bool first = true;
  for (std::uint64_t id : c.probe_ids) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(id);
  }
  out += "],\"link_votes\":";
  append_votes(out, c.link_votes);
  out += ",\"switch_votes\":";
  append_votes(out, c.switch_votes);
  out += ",\"thresholds\":[";
  first = true;
  for (const ThresholdCheck& t : c.thresholds) {
    if (!first) out += ',';
    first = false;
    out += to_json(t);
  }
  out += ']';
  if (!c.drop_sites.empty()) {
    // Optional: absent entirely when empty so recorder-off output is
    // byte-identical to builds that predate auto-triage.
    out += ",\"drop_sites\":[";
    first = true;
    for (const auto& [site, count] : c.drop_sites) {
      if (!first) out += ',';
      first = false;
      out += "{\"site\":\"";
      append_json_escaped(out, site);
      out += "\",\"count\":" + std::to_string(count) + '}';
    }
    out += ']';
  }
  out += ",\"summary\":\"";
  append_json_escaped(out, c.summary);
  out += "\"}";
  return out;
}

std::string to_json(const DiagnosisLog& log) {
  std::string out =
      "{\"period_start\":" + std::to_string(log.period_start) +
      ",\"period_end\":" + std::to_string(log.period_end) + ",\"chains\":[";
  bool first = true;
  for (const EvidenceChain& c : log.chains) {
    if (!first) out += ',';
    first = false;
    out += to_json(c);
  }
  out += "]}";
  return out;
}

}  // namespace rpm::obs
