#include "verbs/verbs.h"

namespace rpm::verbs {

int TracepointRegistry::attach_modify_qp(ModifyHandler h) {
  const int handle = next_handle_++;
  modify_.emplace(handle, std::move(h));
  return handle;
}

int TracepointRegistry::attach_destroy_qp(DestroyHandler h) {
  const int handle = next_handle_++;
  destroy_.emplace(handle, std::move(h));
  return handle;
}

void TracepointRegistry::detach(int handle) {
  modify_.erase(handle);
  destroy_.erase(handle);
}

void TracepointRegistry::fire_modify(const ModifyQpEvent& e) const {
  for (const auto& [_, h] : modify_) h(e);
}

void TracepointRegistry::fire_destroy(const DestroyQpEvent& e) const {
  for (const auto& [_, h] : destroy_) h(e);
}

void VerbsContext::modify_qp_connect(Qpn qpn, Gid remote_gid, Qpn remote_qpn,
                                     std::uint16_t src_port) {
  device_.connect_qp(qpn, remote_gid, remote_qpn, src_port);

  ModifyQpEvent e;
  e.host = host_;
  e.rnic = device_.id();
  e.local_qpn = qpn;
  e.type = rnic::QpType::kRC;
  e.tuple.src_ip = device_.ip();
  if (const auto remote = rnic::rnic_of_gid(remote_gid)) {
    e.tuple.dst_ip = device_.topology().rnic(*remote).ip;
  }
  e.tuple.src_port = src_port;
  e.remote_gid = remote_gid;
  e.remote_qpn = remote_qpn;
  e.service = service_;
  tracepoints_.fire_modify(e);
}

void VerbsContext::destroy_qp(Qpn qpn) {
  device_.destroy_qp(qpn);
  DestroyQpEvent e;
  e.host = host_;
  e.rnic = device_.id();
  e.local_qpn = qpn;
  tracepoints_.fire_destroy(e);
}

}  // namespace rpm::verbs
