// A verbs-like API facade over rnic::RnicDevice, plus the eBPF-style
// tracepoint registry R-Pingmesh's service-flow monitor attaches to.
//
// §4.2.2: services connect RC QPs by calling modify_qp (which carries the
// outer 5-tuple after the RTR transition) and tear them down with
// destroy_qp. R-Pingmesh traces exactly these two verbs with eBPF — cheap,
// because they only fire at connection setup/teardown. Here the "kernel" is
// the per-host TracepointRegistry; attaching a callback is the simulation
// equivalent of loading the eBPF program.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/five_tuple.h"
#include "common/types.h"
#include "obs/flight_recorder.h"
#include "rnic/rnic.h"

namespace rpm::verbs {

/// What the eBPF program sees when modify_qp transitions a QP to RTR/RTS:
/// the connection's endpoints and the outer 5-tuple it will use.
struct ModifyQpEvent {
  HostId host;
  RnicId rnic;
  Qpn local_qpn;
  rnic::QpType type = rnic::QpType::kRC;
  FiveTuple tuple;
  Gid remote_gid;
  Qpn remote_qpn;
  // Which service owns the connecting process. In production this comes
  // from pid/cgroup attribution; the simulator carries it explicitly.
  ServiceId service;
};

struct DestroyQpEvent {
  HostId host;
  RnicId rnic;
  Qpn local_qpn;
};

/// Per-host tracepoint fan-out (the "kernel side"). Handlers must not throw.
class TracepointRegistry {
 public:
  using ModifyHandler = std::function<void(const ModifyQpEvent&)>;
  using DestroyHandler = std::function<void(const DestroyQpEvent&)>;

  /// Attach returns a handle usable with detach().
  int attach_modify_qp(ModifyHandler h);
  int attach_destroy_qp(DestroyHandler h);
  void detach(int handle);

  void fire_modify(const ModifyQpEvent& e) const;
  void fire_destroy(const DestroyQpEvent& e) const;

 private:
  int next_handle_ = 1;
  std::unordered_map<int, ModifyHandler> modify_;
  std::unordered_map<int, DestroyHandler> destroy_;
};

/// An opened device context, one per (process, RNIC) pair — the handle a
/// service or the Agent uses to drive one RNIC.
class VerbsContext {
 public:
  VerbsContext(rnic::RnicDevice& device, TracepointRegistry& tracepoints,
               HostId host, ServiceId service = ServiceId{})
      : device_(device),
        tracepoints_(tracepoints),
        host_(host),
        service_(service) {}

  [[nodiscard]] rnic::RnicDevice& device() { return device_; }
  [[nodiscard]] const rnic::RnicDevice& device() const { return device_; }
  [[nodiscard]] Gid gid() const { return device_.gid(); }
  [[nodiscard]] HostId host() const { return host_; }

  /// ibv_create_qp.
  Qpn create_qp(rnic::QpConfig cfg) { return device_.create_qp(std::move(cfg)); }

  /// ibv_modify_qp to RTR+RTS for a connected QP. The `src_port` argument is
  /// the flow-label-chosen outer UDP source port. Fires the modify_qp
  /// tracepoint with the resulting 5-tuple.
  void modify_qp_connect(Qpn qpn, Gid remote_gid, Qpn remote_qpn,
                         std::uint16_t src_port);

  /// ibv_destroy_qp. Fires the destroy_qp tracepoint.
  void destroy_qp(Qpn qpn);

  /// ibv_post_send on a UD QP with an address handle for (gid, qpn).
  /// `trace_id` (0 = untracked) marks the send for the probe flight
  /// recorder: the post itself is recorded here and the id rides the
  /// Datagram for per-hop attribution in the fabric.
  void post_send_ud(Qpn qpn, Gid dst_gid, Qpn dst_qpn, std::uint16_t src_port,
                    Bytes size, std::any payload, std::uint64_t wr_id,
                    std::uint64_t trace_id = 0) {
    if (trace_id != 0) {
      obs::recorder().record(trace_id, obs::ProbeEventKind::kVerbsPost);
    }
    device_.post_send_ud(qpn, dst_gid, dst_qpn, src_port, size,
                         std::move(payload), wr_id, trace_id);
  }

  /// ibv_post_send on a connected (RC/UC) QP.
  void post_send(Qpn qpn, Bytes size, std::any payload, std::uint64_t wr_id) {
    device_.post_send_connected(qpn, size, std::move(payload), wr_id);
  }

 private:
  rnic::RnicDevice& device_;
  TracepointRegistry& tracepoints_;
  HostId host_;
  ServiceId service_;
};

}  // namespace rpm::verbs
