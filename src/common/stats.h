// Small statistics helpers used for SLA aggregation and reporting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace rpm {

/// Streaming mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Collects raw samples and answers percentile queries. Intended for bounded
/// windows (e.g. one 20 s Analyzer period); for unbounded runs use
/// LogHistogram.
class PercentileWindow {
 public:
  void add(double x) { samples_.push_back(x); }
  void clear() { samples_.clear(); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// q in [0, 1]; q = 0.5 is the median. Returns 0 when empty.
  /// Non-const because it partially sorts the sample buffer in place.
  [[nodiscard]] double percentile(double q);

  [[nodiscard]] double mean() const;

 private:
  std::vector<double> samples_;
};

/// Logarithmically bucketed histogram for long-running latency distributions.
/// Resolution is ~4 % per bucket, enough for P50..P999 SLA reporting.
class LogHistogram {
 public:
  /// `min_value` is the smallest distinguishable sample; anything below is
  /// clamped into the first bucket.
  explicit LogHistogram(double min_value = 1.0, double max_value = 1e12);

  void add(double x);
  void merge(const LogHistogram& other);
  void clear();

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double percentile(double q) const;

 private:
  [[nodiscard]] std::size_t bucket_for(double x) const;
  [[nodiscard]] double bucket_midpoint(std::size_t b) const;

  double min_value_;
  double log_min_;
  double inv_log_step_;
  double log_step_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
};

/// Pretty-print a quantile summary line like "p50=12.3us p99=45.6us".
std::string quantile_summary(PercentileWindow& w, const std::string& unit,
                             double scale = 1.0);

}  // namespace rpm
