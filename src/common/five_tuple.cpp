#include "common/five_tuple.h"

#include <sstream>

namespace rpm {

std::string ip_to_string(IpAddr ip) {
  std::ostringstream os;
  os << ((ip.value >> 24) & 0xff) << '.' << ((ip.value >> 16) & 0xff) << '.'
     << ((ip.value >> 8) & 0xff) << '.' << (ip.value & 0xff);
  return os.str();
}

std::string FiveTuple::to_string() const {
  std::ostringstream os;
  os << ip_to_string(src_ip) << ':' << src_port << "->" << ip_to_string(dst_ip)
     << ':' << dst_port << "/p" << static_cast<int>(protocol);
  return os.str();
}

}  // namespace rpm
