// Minimal leveled logger. Off by default above WARN so tests and benches stay
// quiet; examples turn INFO on to narrate what the system is doing.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace rpm {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are discarded.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() {
  return detail::LogLine(LogLevel::kDebug, "DEBUG");
}
inline detail::LogLine log_info() {
  return detail::LogLine(LogLevel::kInfo, "INFO ");
}
inline detail::LogLine log_warn() {
  return detail::LogLine(LogLevel::kWarn, "WARN ");
}
inline detail::LogLine log_error() {
  return detail::LogLine(LogLevel::kError, "ERROR");
}

}  // namespace rpm
