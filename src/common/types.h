// Core vocabulary types shared by every module: strong identifiers,
// simulated-time representation, and a few small POD helpers.
//
// All simulated time is an integer count of nanoseconds since simulation
// start (`TimeNs`). Wall-clock-like readings taken on a device clock (which
// may be offset and drifting relative to simulated time) use the same
// representation but are only ever compared against readings from the same
// clock; see sim/clock.h.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace rpm {

/// Simulated time in nanoseconds since simulation start.
using TimeNs = std::int64_t;

/// Sentinel for "no time" / "not yet happened".
inline constexpr TimeNs kNoTime = std::numeric_limits<TimeNs>::min();

/// Convenience constructors for durations.
constexpr TimeNs nsec(std::int64_t v) { return v; }
constexpr TimeNs usec(std::int64_t v) { return v * 1'000; }
constexpr TimeNs msec(std::int64_t v) { return v * 1'000'000; }
constexpr TimeNs sec(std::int64_t v) { return v * 1'000'000'000; }

/// Convert a duration to floating-point seconds (for reporting only).
constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) * 1e-9; }
/// Convert a duration to floating-point microseconds (for reporting only).
constexpr double to_usec(TimeNs t) { return static_cast<double>(t) * 1e-3; }

/// Strongly typed 32-bit identifier. `Tag` only disambiguates the type, so a
/// SwitchId cannot be passed where a HostId is expected.
template <typename Tag>
struct Id {
  static constexpr std::uint32_t kInvalidValue =
      std::numeric_limits<std::uint32_t>::max();

  std::uint32_t value = kInvalidValue;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalidValue; }

  friend constexpr auto operator<=>(Id, Id) = default;
};

using HostId = Id<struct HostIdTag>;
using RnicId = Id<struct RnicIdTag>;
using SwitchId = Id<struct SwitchIdTag>;
using LinkId = Id<struct LinkIdTag>;
using FlowId = Id<struct FlowIdTag>;
using ServiceId = Id<struct ServiceIdTag>;
using ProbeId = Id<struct ProbeIdTag>;

/// RoCE Global Identifier. Real GIDs are 128-bit; for the simulator a 64-bit
/// value uniquely derived from the RNIC is sufficient (we never parse bytes).
struct Gid {
  std::uint64_t value = 0;

  friend constexpr auto operator<=>(Gid, Gid) = default;
};

/// Queue Pair Number. QPNs are allocated per-RNIC and change when the owning
/// process recreates the QP (e.g. Agent restart) — the source of the paper's
/// "QPN reset" probe noise (§4.3.1).
struct Qpn {
  std::uint32_t value = 0;

  [[nodiscard]] constexpr bool valid() const { return value != 0; }

  friend constexpr auto operator<=>(Qpn, Qpn) = default;
};

/// Number of bytes (payloads, queue depths, counters).
using Bytes = std::int64_t;

/// Gigabits-per-second capacity expressed as bytes-per-second.
constexpr double gbps_to_Bps(double gbps) { return gbps * 1e9 / 8.0; }

}  // namespace rpm

namespace std {

template <typename Tag>
struct hash<rpm::Id<Tag>> {
  size_t operator()(rpm::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct hash<rpm::Gid> {
  size_t operator()(rpm::Gid g) const noexcept {
    return std::hash<std::uint64_t>{}(g.value);
  }
};

template <>
struct hash<rpm::Qpn> {
  size_t operator()(rpm::Qpn q) const noexcept {
    return std::hash<std::uint32_t>{}(q.value);
  }
};

}  // namespace std
