// The outer UDP 5-tuple of a RoCEv2 packet, plus helpers.
//
// RoCEv2 encapsulates RDMA over UDP: the destination port is fixed at 4791
// and ECMP load balancing in the fabric hashes the *source* port, which the
// verbs API lets applications choose via the flow label (§3.1 of the paper).
// R-Pingmesh exploits this: probes that reuse a service flow's 5-tuple are
// routed onto the same ECMP path as the service flow.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.h"

namespace rpm {

/// RoCEv2 destination UDP port (fixed by the RoCEv2 spec).
inline constexpr std::uint16_t kRoceUdpPort = 4791;

/// IPv4 address as a 32-bit value. The simulator assigns one address per
/// RNIC; no subnetting logic is modelled.
struct IpAddr {
  std::uint32_t value = 0;

  friend constexpr auto operator<=>(IpAddr, IpAddr) = default;
};

/// Outer UDP/IP 5-tuple used for ECMP hashing.
struct FiveTuple {
  IpAddr src_ip;
  IpAddr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = kRoceUdpPort;
  std::uint8_t protocol = 17;  // UDP

  friend constexpr auto operator<=>(const FiveTuple&, const FiveTuple&) =
      default;

  /// Stable 64-bit hash used both by ECMP and by hash maps. The fabric's
  /// ECMP decision combines this with a per-switch seed (see routing/).
  [[nodiscard]] std::uint64_t stable_hash() const {
    // SplitMix64-style mixing of all fields; deterministic across runs.
    std::uint64_t x = (static_cast<std::uint64_t>(src_ip.value) << 32) |
                      dst_ip.value;
    x ^= (static_cast<std::uint64_t>(src_port) << 24) ^
         (static_cast<std::uint64_t>(dst_port) << 8) ^ protocol;
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  [[nodiscard]] std::string to_string() const;
};

std::string ip_to_string(IpAddr ip);

/// The RDMA-internal 4-tuple identifying a connection at the verbs layer
/// (§3.1 footnote 3): source/destination GID and QPN.
struct RdmaFourTuple {
  Gid src_gid;
  Qpn src_qpn;
  Gid dst_gid;
  Qpn dst_qpn;

  friend constexpr auto operator<=>(const RdmaFourTuple&,
                                    const RdmaFourTuple&) = default;
};

}  // namespace rpm

namespace std {

template <>
struct hash<rpm::IpAddr> {
  size_t operator()(rpm::IpAddr ip) const noexcept {
    return std::hash<std::uint32_t>{}(ip.value);
  }
};

template <>
struct hash<rpm::FiveTuple> {
  size_t operator()(const rpm::FiveTuple& t) const noexcept {
    return static_cast<size_t>(t.stable_hash());
  }
};

}  // namespace std
