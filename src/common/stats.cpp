#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace rpm {

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::reset() { *this = OnlineStats{}; }

double PercentileWindow::percentile(double q) {
  if (samples_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  auto nth = samples_.begin() + static_cast<std::ptrdiff_t>(rank);
  std::nth_element(samples_.begin(), nth, samples_.end());
  return *nth;
}

double PercentileWindow::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

LogHistogram::LogHistogram(double min_value, double max_value)
    : min_value_(min_value) {
  if (min_value <= 0.0 || max_value <= min_value) {
    throw std::invalid_argument("LogHistogram: invalid bounds");
  }
  log_step_ = std::log(1.04);  // ~4% buckets
  log_min_ = std::log(min_value);
  inv_log_step_ = 1.0 / log_step_;
  const auto nbuckets = static_cast<std::size_t>(
                            (std::log(max_value) - log_min_) * inv_log_step_) +
                        2;
  buckets_.assign(nbuckets, 0);
}

std::size_t LogHistogram::bucket_for(double x) const {
  if (x <= min_value_) return 0;
  const auto b =
      static_cast<std::size_t>((std::log(x) - log_min_) * inv_log_step_) + 1;
  return std::min(b, buckets_.size() - 1);
}

double LogHistogram::bucket_midpoint(std::size_t b) const {
  if (b == 0) return min_value_;
  return std::exp(log_min_ + (static_cast<double>(b) - 0.5) * log_step_);
}

void LogHistogram::add(double x) {
  ++buckets_[bucket_for(x)];
  ++count_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.buckets_.size() != buckets_.size()) {
    throw std::invalid_argument("LogHistogram::merge: shape mismatch");
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
}

void LogHistogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
}

double LogHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > target) return bucket_midpoint(b);
  }
  return bucket_midpoint(buckets_.size() - 1);
}

std::string quantile_summary(PercentileWindow& w, const std::string& unit,
                             double scale) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << "p50=" << w.percentile(0.50) * scale << unit
     << " p90=" << w.percentile(0.90) * scale << unit
     << " p99=" << w.percentile(0.99) * scale << unit
     << " p999=" << w.percentile(0.999) * scale << unit;
  return os.str();
}

}  // namespace rpm
