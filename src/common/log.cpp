#include "common/log.h"

namespace rpm {

namespace {
LogLevel g_threshold = LogLevel::kWarn;
}  // namespace

LogLevel log_threshold() { return g_threshold; }
void set_log_threshold(LogLevel level) { g_threshold = level; }

namespace detail {

LogLine::LogLine(LogLevel level, const char* tag)
    : enabled_(level >= g_threshold) {
  if (enabled_) stream_ << '[' << tag << "] ";
}

LogLine::~LogLine() {
  if (enabled_) std::clog << stream_.str() << '\n';
}

}  // namespace detail
}  // namespace rpm
