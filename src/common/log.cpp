#include "common/log.h"

#include <atomic>
#include <mutex>

namespace rpm {

namespace {
std::atomic<LogLevel> g_threshold = LogLevel::kWarn;

// One mutex for the final sink write. Each LogLine buffers into its own
// ostringstream and is flushed as a single line, so concurrent loggers can
// never interleave characters within a line.
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}
}  // namespace

LogLevel log_threshold() {
  return g_threshold.load(std::memory_order_relaxed);
}
void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* tag)
    : enabled_(level >= log_threshold()) {
  if (enabled_) stream_ << '[' << tag << "] ";
}

LogLine::~LogLine() {
  if (!enabled_) return;
  stream_ << '\n';
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::clog << line;
}

}  // namespace detail
}  // namespace rpm
