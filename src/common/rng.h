// Deterministic random number generation.
//
// Every stochastic component takes an explicit `Rng&` (or a seed) so that
// simulations are reproducible; nothing in the library reads global entropy.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>

namespace rpm {

/// Thin wrapper over std::mt19937_64 with the handful of draws the simulator
/// needs. Copyable so components can fork independent deterministic streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponential inter-arrival with the given mean (> 0).
  double exponential(double mean) {
    if (mean <= 0.0) throw std::invalid_argument("exponential: mean <= 0");
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal draw.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Pick a uniformly random index into a container of the given size.
  std::size_t index(std::size_t size) {
    if (size == 0) throw std::invalid_argument("index: empty range");
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(size) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Fork a child generator with an independent deterministic stream.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rpm
