// Minimal deterministic JSON value: parse + dump.
//
// Exists for the round-trippable artifacts the chaos fuzzer produces
// (ChaosPlan repro files, the tests/chaos_corpus/ regression corpus): every
// other JSON in the repo is write-only, but a replayable corpus needs a
// reader. Deliberately small:
//
//  * objects preserve insertion order (deterministic dump, no hash-map
//    iteration order in any artifact);
//  * integers stay exact (std::int64_t) and are distinguished from doubles;
//  * doubles dump via std::to_chars shortest round-trip form, so
//    parse(dump(v)) reproduces v bit for bit;
//  * parse throws std::runtime_error with an offset on malformed input.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace rpm::json {

class Value;

using Array = std::vector<Value>;
/// Insertion-ordered object (linear find: artifact objects are small).
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}
  Value(bool b) : v_(b) {}
  Value(std::int64_t i) : v_(i) {}
  Value(int i) : v_(static_cast<std::int64_t>(i)) {}
  Value(std::uint32_t i) : v_(static_cast<std::int64_t>(i)) {}
  Value(std::uint64_t i) : v_(static_cast<std::int64_t>(i)) {}
  Value(double d) : v_(d) {}
  Value(const char* s) : v_(std::string(s)) {}
  Value(std::string s) : v_(std::move(s)) {}
  Value(Array a) : v_(std::move(a)) {}
  Value(Object o) : v_(std::move(o)) {}

  [[nodiscard]] Type type() const;
  [[nodiscard]] bool is_null() const { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type() == Type::kBool; }
  [[nodiscard]] bool is_int() const { return type() == Type::kInt; }
  [[nodiscard]] bool is_double() const { return type() == Type::kDouble; }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type() == Type::kObject; }

  /// Checked accessors: throw std::runtime_error on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;  // also accepts integral doubles
  [[nodiscard]] double as_double() const;     // accepts int
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object field lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// find() + checked accessors with a default when absent.
  [[nodiscard]] std::int64_t get_int(std::string_view key,
                                     std::int64_t dflt = 0) const;
  [[nodiscard]] double get_double(std::string_view key,
                                  double dflt = 0.0) const;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string dflt = "") const;
  [[nodiscard]] bool get_bool(std::string_view key, bool dflt = false) const;

  /// Build helpers (object only): appends, does not replace.
  void set(std::string key, Value v);

  /// Serialize. indent < 0: compact one-line; otherwise pretty-printed with
  /// `indent` spaces per level. Deterministic: same Value => same bytes.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parse a complete JSON document (trailing garbage is an error).
  static Value parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      v_;
};

/// Escape + quote a string into `out` (the repo-wide JSON string contract).
void append_quoted(std::string& out, std::string_view s);

}  // namespace rpm::json
