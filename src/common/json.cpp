#include "common/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rpm::json {

namespace {

[[noreturn]] void fail(std::string_view what, std::size_t off) {
  throw std::runtime_error("json: " + std::string(what) + " at offset " +
                           std::to_string(off));
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input", pos);
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'", pos);
    ++pos;
  }

  bool consume(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume("true")) return Value(true);
        fail("bad literal", pos);
      case 'f':
        if (consume("false")) return Value(false);
        fail("bad literal", pos);
      case 'n':
        if (consume("null")) return Value(nullptr);
        fail("bad literal", pos);
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos;
      return Value(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos;
        continue;
      }
      if (c == '}') {
        ++pos;
        return Value(std::move(obj));
      }
      fail("expected ',' or '}'", pos);
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos;
        continue;
      }
      if (c == ']') {
        ++pos;
        return Value(std::move(arr));
      }
      fail("expected ',' or ']'", pos);
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string", pos);
      const char c = text[pos++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape", pos);
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("truncated \\u escape", pos);
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape", pos - 1);
          }
          // UTF-8 encode (no surrogate-pair support: artifacts are ASCII).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape", pos - 1);
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    bool integral = true;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c >= '0' && c <= '9') {
        ++pos;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos;
      } else {
        break;
      }
    }
    const std::string_view tok = text.substr(start, pos - start);
    if (tok.empty() || tok == "-") fail("bad number", start);
    if (integral) {
      std::int64_t i = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Value(i);
      // Fall through on overflow: reparse as double.
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size()) {
      fail("bad number", start);
    }
    return Value(d);
  }
};

void dump_value(const Value& v, std::string& out, int indent, int depth);

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent < 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

void dump_double(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; artifacts never contain them, but stay valid.
    out += "null";
    return;
  }
  char buf[64];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  out.append(buf, p);
  // Keep the value recognizably a double on re-parse.
  if (out.find_first_of(".eE", out.size() - static_cast<std::size_t>(p - buf)) ==
      std::string::npos) {
    out += ".0";
  }
}

void dump_value(const Value& v, std::string& out, int indent, int depth) {
  switch (v.type()) {
    case Value::Type::kNull: out += "null"; return;
    case Value::Type::kBool: out += v.as_bool() ? "true" : "false"; return;
    case Value::Type::kInt: out += std::to_string(v.as_int()); return;
    case Value::Type::kDouble: dump_double(out, v.as_double()); return;
    case Value::Type::kString: append_quoted(out, v.as_string()); return;
    case Value::Type::kArray: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) out += indent < 0 ? "," : ",";
        append_newline_indent(out, indent, depth + 1);
        dump_value(a[i], out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Value::Type::kObject: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i > 0) out += ",";
        append_newline_indent(out, indent, depth + 1);
        append_quoted(out, o[i].first);
        out += indent < 0 ? ":" : ": ";
        dump_value(o[i].second, out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

}  // namespace

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

Value::Type Value::type() const {
  switch (v_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kBool;
    case 2: return Type::kInt;
    case 3: return Type::kDouble;
    case 4: return Type::kString;
    case 5: return Type::kArray;
    default: return Type::kObject;
  }
}

bool Value::as_bool() const {
  if (!is_bool()) throw std::runtime_error("json: not a bool");
  return std::get<bool>(v_);
}

std::int64_t Value::as_int() const {
  if (is_int()) return std::get<std::int64_t>(v_);
  if (is_double()) {
    const double d = std::get<double>(v_);
    const auto i = static_cast<std::int64_t>(d);
    if (static_cast<double>(i) == d) return i;
  }
  throw std::runtime_error("json: not an integer");
}

double Value::as_double() const {
  if (is_double()) return std::get<double>(v_);
  if (is_int()) return static_cast<double>(std::get<std::int64_t>(v_));
  throw std::runtime_error("json: not a number");
}

const std::string& Value::as_string() const {
  if (!is_string()) throw std::runtime_error("json: not a string");
  return std::get<std::string>(v_);
}

const Array& Value::as_array() const {
  if (!is_array()) throw std::runtime_error("json: not an array");
  return std::get<Array>(v_);
}

const Object& Value::as_object() const {
  if (!is_object()) throw std::runtime_error("json: not an object");
  return std::get<Object>(v_);
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::int64_t Value::get_int(std::string_view key, std::int64_t dflt) const {
  const Value* v = find(key);
  return v == nullptr ? dflt : v->as_int();
}

double Value::get_double(std::string_view key, double dflt) const {
  const Value* v = find(key);
  return v == nullptr ? dflt : v->as_double();
}

std::string Value::get_string(std::string_view key, std::string dflt) const {
  const Value* v = find(key);
  return v == nullptr ? std::move(dflt) : v->as_string();
}

bool Value::get_bool(std::string_view key, bool dflt) const {
  const Value* v = find(key);
  return v == nullptr ? dflt : v->as_bool();
}

void Value::set(std::string key, Value v) {
  if (!is_object()) v_ = Object{};
  std::get<Object>(v_).emplace_back(std::move(key), std::move(v));
}

std::string Value::dump(int indent) const {
  std::string out;
  out.reserve(256);
  dump_value(*this, out, indent, 0);
  return out;
}

Value Value::parse(std::string_view text) {
  Parser p{text};
  Value v = p.parse_value();
  p.skip_ws();
  if (p.pos != text.size()) fail("trailing characters", p.pos);
  return v;
}

}  // namespace rpm::json
