// ChaosPlan <-> JSON. The serialization that makes chaos campaigns
// artifacts instead of code: the fuzzer's minimized counterexamples land in
// tests/chaos_corpus/ as plan JSON and are replayed byte-for-byte by ctest.
//
// Schema (all times in nanoseconds):
//   {
//     "duration_ns": 120000000000,
//     "seed": 7,
//     "match_grace_ns": 30000000000,
//     "outage_grace_ns": 30000000000,
//     "steps": [
//       {"kind": "controller-crash", "at_ns": 20000000000},
//       {"kind": "inject", "at_ns": 30000000000, "label": "corr",
//        "spec": {"ctor": "corruption", "link": 12, "prob": 0.5}},
//       {"kind": "clear", "at_ns": 60000000000, "clear_ref": "corr"},
//       ...
//     ]
//   }
#pragma once

#include <string>
#include <string_view>

#include "chaos/chaos.h"
#include "common/json.h"

namespace rpm::chaos {

json::Value plan_to_value(const ChaosPlan& plan);
std::string plan_to_json(const ChaosPlan& plan);  // pretty, trailing newline

/// Throws std::runtime_error / std::invalid_argument on malformed input.
ChaosPlan plan_from_value(const json::Value& v);
ChaosPlan plan_from_json(std::string_view text);

}  // namespace rpm::chaos
