// chaos invariant oracles — what "survived" means, beyond precision/recall.
//
// A ChaosReport already scores localization quality; the oracles pin down
// the properties that must hold for EVERY valid campaign, so a randomized
// fuzzer can flag a run as failing without a human reading the report:
//
//   phantom-verdict        no false positives at all: a control-plane
//                          campaign must never conjure a verdict;
//   phantom-switch         in particular, no phantom switch localizations
//                          (the paper's "don't page the network team" bar);
//   outage-false-positive  zero false positives inside outage windows;
//   recovery               every control-plane event recovers to a clean
//                          period within max_recovery_periods (when the
//                          campaign leaves room to observe it);
//   journal-digest-seq     a journal-restored pod never replays or reuses a
//                          digest seq: the global tier's max accepted seq
//                          stays <= what the pod actually sent;
//   spill-drain            every Agent's catch-up spill ring drains to zero
//                          by campaign end (no stranded history);
//   journal-decode         every role's stored checkpoint decodes (save /
//                          load round-trips through the CRC'd codec).
//
// Post-state oracles inspect the deployment AFTER ChaosRunner::run() has
// returned, on the same RPingmesh instance the plan ran against.
#pragma once

#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "common/types.h"
#include "core/rpingmesh.h"

namespace rpm::chaos {

struct OracleConfig {
  /// Analyzer period backing the report (recovery deadline arithmetic).
  TimeNs period = sec(5);
  /// A control-plane event must reach a clean period within this many
  /// periods — checked only when the campaign leaves enough room after the
  /// event to observe that many periods.
  int max_recovery_periods = 10;
  bool check_recovery = true;
  bool check_digest_seq = true;
  bool check_spill = true;
  bool check_journal = true;
};

struct InvariantViolation {
  std::string oracle;  // stable oracle name (see header comment)
  std::string detail;
};

struct OracleReport {
  std::vector<InvariantViolation> violations;
  [[nodiscard]] bool ok() const { return violations.empty(); }
  /// "oracle: detail; oracle: detail" — log/CLI convenience.
  [[nodiscard]] std::string summary() const;
};

/// Score `rep` (produced by running a plan on `rpm`) plus the deployment's
/// post-campaign state against every enabled oracle.
OracleReport check_invariants(const ChaosReport& rep, core::RPingmesh& rpm,
                              const OracleConfig& cfg = {});

}  // namespace rpm::chaos
