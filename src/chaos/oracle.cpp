#include "chaos/oracle.h"

namespace rpm::chaos {

std::string OracleReport::summary() const {
  std::string out;
  for (const InvariantViolation& v : violations) {
    if (!out.empty()) out += "; ";
    out += v.oracle + ": " + v.detail;
  }
  return out;
}

OracleReport check_invariants(const ChaosReport& rep, core::RPingmesh& rpm,
                              const OracleConfig& cfg) {
  OracleReport out;
  const auto violate = [&](const char* oracle, std::string detail) {
    out.violations.push_back({oracle, std::move(detail)});
  };

  if (rep.false_positives > 0) {
    violate("phantom-verdict",
            std::to_string(rep.false_positives) +
                " verdict(s) with no fault active");
  }
  if (rep.switch_false_positives > 0) {
    violate("phantom-switch", std::to_string(rep.switch_false_positives) +
                                  " phantom switch localization(s)");
  }
  if (rep.outage_false_positives > 0) {
    violate("outage-false-positive",
            std::to_string(rep.outage_false_positives) +
                " false positive(s) inside outage windows");
  }

  if (cfg.check_recovery) {
    for (const ChaosReport::Recovery& r : rep.recoveries) {
      // Only enforce when the campaign left room to observe the deadline.
      const TimeNs deadline =
          r.at + static_cast<TimeNs>(cfg.max_recovery_periods + 1) *
                     cfg.period;
      if (deadline > rep.duration) continue;
      if (r.periods_to_recover < 1 ||
          r.periods_to_recover > cfg.max_recovery_periods) {
        violate("recovery",
                r.event + " at " + std::to_string(r.at) + "ns recovered in " +
                    std::to_string(r.periods_to_recover) +
                    " periods (budget " +
                    std::to_string(cfg.max_recovery_periods) + ")");
      }
    }
  }

  if (cfg.check_digest_seq && rpm.federated()) {
    for (std::size_t p = 0; p < rpm.num_pods(); ++p) {
      const std::uint64_t sent = rpm.pod_analyzer(p).digests_sent();
      const std::uint64_t accepted =
          rpm.global_analyzer().max_digest_seq(static_cast<std::uint32_t>(p));
      if (accepted > sent) {
        violate("journal-digest-seq",
                "pod " + std::to_string(p) + " accepted seq " +
                    std::to_string(accepted) + " > sent " +
                    std::to_string(sent));
      }
    }
  }

  if (cfg.check_spill) {
    for (std::size_t h = 0; h < rpm.num_agents(); ++h) {
      const std::size_t depth =
          rpm.agent(HostId{static_cast<std::uint32_t>(h)}).spill_depth();
      if (depth != 0) {
        violate("spill-drain", "host " + std::to_string(h) + " spill ring " +
                                   std::to_string(depth) +
                                   " deep at campaign end");
      }
    }
  }

  if (cfg.check_journal) {
    std::vector<std::string> roles;
    if (rpm.federated()) {
      for (std::size_t p = 0; p < rpm.num_pods(); ++p) {
        roles.push_back("pod" + std::to_string(p));
      }
      roles.emplace_back("global");
    } else {
      roles.emplace_back("analyzer");
    }
    for (const std::string& role : roles) {
      if (rpm.journal().checkpoint_bytes(role) == 0) continue;
      if (!rpm.journal().load_checkpoint(role).has_value()) {
        violate("journal-decode",
                "role '" + role + "' checkpoint failed to decode");
      }
    }
  }

  return out;
}

}  // namespace rpm::chaos
