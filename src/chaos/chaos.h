// Chaos harness for control-plane survivability (ROADMAP "robustness").
//
// A ChaosPlan is a scripted timeline mixing real network faults (via
// faults::FaultInjector) with control-plane lifecycle events the paper's
// production deployment has to survive: Controller crashes/restarts,
// Analyzer brownouts, and Agent process restarts (QPN resets). ChaosRunner
// executes the plan against a deployed RPingmesh, then scores every
// Analyzer verdict produced during the campaign against the injector's
// FaultRecord ground truth:
//
//  * precision / recall of localization — a verdict is a true positive only
//    when it names the faulted entity (link either direction, RNIC, host)
//    while that fault was active;
//  * false positives inside control-plane outage windows — a Controller
//    crash or Analyzer brownout must never masquerade as a switch problem;
//  * host-down verdicts explainable by the blackout itself are reported as
//    `collateral` (visible, but not counted against precision);
//  * periods-to-full-recovery after each control-plane event — how many
//    analysis periods pass until the Analyzer produces a clean period
//    (records flowing, no false positive) again.
//
// The resulting ChaosReport serializes to JSON deterministically: same
// seed, same plan -> byte-identical bytes (CI diffs two runs). No wall
// clock, no unordered-container iteration order leaks into the output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "core/rpingmesh.h"
#include "faults/catalog.h"
#include "faults/faults.h"
#include "host/cluster.h"

namespace rpm::chaos {

/// One scripted event on the chaos timeline (offsets relative to run()).
struct ChaosStep {
  enum class Kind : std::uint8_t {
    kControllerCrash,
    kControllerRestart,
    kAnalyzerOutageBegin,
    kAnalyzerOutageEnd,
    kAgentRestart,  // inject_qpn_reset ground truth + Agent::restart()
    kPodAnalyzerCrash,    // federated: crash pod `pod`'s Analyzer process
    kPodAnalyzerRestart,  // federated: journal-restore pod `pod`'s Analyzer
    kInject,        // apply `spec` via the FaultCatalog
    kClear,         // clear the kInject step labeled `clear_ref`
  };
  Kind kind{};
  TimeNs at = 0;
  std::string label;        // kInject: ground-truth key; others: display only
  HostId host;              // kAgentRestart
  std::size_t pod = 0;      // kPodAnalyzerCrash / kPodAnalyzerRestart
  faults::FaultSpec spec;   // kInject: named, serializable fault parameters
  std::string clear_ref;    // kClear
};

const char* chaos_step_name(ChaosStep::Kind k);
/// Inverse of chaos_step_name; throws std::invalid_argument on unknown.
ChaosStep::Kind chaos_step_kind_from_name(std::string_view name);

/// A scripted campaign. Build with the fluent helpers; steps may be added
/// in any order (the runner schedules by `at`).
struct ChaosPlan {
  TimeNs duration = sec(120);
  std::uint64_t seed = 0;  // echoed into the report (provenance only)
  /// A fault stays matchable this long after it is cleared: verdicts lag
  /// injection by up to a period plus the RNIC-blame window.
  TimeNs match_grace = sec(30);
  /// Outage windows extend this far past the recovery event: the first
  /// periods back digest history uploaded about the blackout.
  TimeNs outage_grace = sec(30);
  std::vector<ChaosStep> steps;

  ChaosPlan& controller_crash(TimeNs at);
  ChaosPlan& controller_restart(TimeNs at);
  ChaosPlan& analyzer_outage(TimeNs from, TimeNs to);
  ChaosPlan& agent_restart(TimeNs at, HostId host);
  ChaosPlan& pod_analyzer_crash(TimeNs at, std::size_t pod);
  ChaosPlan& pod_analyzer_restart(TimeNs at, std::size_t pod);
  ChaosPlan& inject(TimeNs at, std::string label, faults::FaultSpec spec);
  ChaosPlan& clear(TimeNs at, std::string label);
};

/// Campaign scorecard. All times are simulated nanoseconds relative to the
/// start of run().
struct ChaosReport {
  std::uint64_t seed = 0;
  TimeNs duration = 0;
  std::size_t periods = 0;          // analysis periods scored
  std::size_t problems_total = 0;   // all Problems emitted (noise included)
  std::size_t true_positives = 0;
  /// Phantom verdicts: claims made while NO scored fault was active — the
  /// only verdicts attributable to the control-plane campaign itself.
  std::size_t false_positives = 0;
  std::size_t switch_false_positives = 0;  // subset: switch localizations
  std::size_t outage_false_positives = 0;  // subset: inside outage windows
  /// Unmatched claims while a scored fault WAS active: the Analyzer saw a
  /// real event but named the wrong entity (or named it before the precise
  /// triage — e.g. a dead host's access links out-voted before the 20 s
  /// silence threshold fires). Localization quality, not a phantom; still
  /// counted against precision.
  std::size_t mislocalized = 0;
  std::size_t collateral_host_down = 0;    // blackout-explained host-downs
  std::size_t noise_problems = 0;          // QPN-reset / Agent-CPU noise
  std::size_t unscored_problems = 0;       // categories outside the rubric
  double precision = 1.0;  // tp / all claims; 1.0 when nothing was claimed
  double recall = 1.0;     // matched scored ground truths / scored GTs

  struct GroundTruthScore {
    std::string label;
    std::string kind;        // fault_kind_name
    bool scored = false;     // noise kinds are reported but not recalled
    bool matched = false;
    TimeNs injected_at = 0;
    TimeNs cleared_at = kNoTime;  // kNoTime: still active at campaign end
  };
  std::vector<GroundTruthScore> ground_truths;  // plan order

  struct Recovery {
    std::string event;  // chaos_step_name
    TimeNs at = 0;
    /// Analysis periods produced from `at` until the first clean period
    /// (records flowing, zero false positives); -1 if never recovered.
    int periods_to_recover = -1;
  };
  std::vector<Recovery> recoveries;  // plan order (control-plane steps only)

  struct PeriodSummary {
    TimeNs period_end = 0;
    std::size_t records = 0;
    std::size_t problems = 0;
    std::size_t false_positives = 0;
    bool in_outage_window = false;
  };
  std::vector<PeriodSummary> period_summaries;  // chronological

  /// Deterministic JSON (two same-seed runs are byte-identical).
  [[nodiscard]] std::string to_json() const;
};

/// Executes ChaosPlans against one deployment. The injector must target the
/// same cluster the RPingmesh is deployed on.
class ChaosRunner {
 public:
  ChaosRunner(host::Cluster& cluster, core::RPingmesh& rpm,
              faults::FaultInjector& injector);

  /// Schedule every step, run the cluster for plan.duration, then score the
  /// Analyzer periods produced during the campaign. The deployment must be
  /// started; faults still active at the end stay active (ground truth
  /// records them as uncleared).
  ChaosReport run(const ChaosPlan& plan);

 private:
  struct GroundTruth {
    std::string label;
    faults::FaultRecord rec;
    TimeNs injected_at = 0;
    TimeNs cleared_at = kNoTime;
  };

  host::Cluster& cluster_;
  core::RPingmesh& rpm_;
  faults::FaultInjector& injector_;
};

}  // namespace rpm::chaos
