// chaos::Shrinker — delta-debugging for failing ChaosPlans.
//
// When a generated campaign violates an oracle, the raw plan is a poor
// artifact: a dozen interleaved events, most irrelevant to the bug. The
// shrinker reduces it while a caller-supplied property ("still violates")
// keeps holding:
//
//   1. ddmin over step GROUPS. Steps that only make sense together stay
//      together — controller crash + its restart, outage begin + end,
//      pod crash + same-pod restart, inject + its clear — so every
//      candidate plan is still valid (no crash without restart, no clear
//      of a missing label).
//   2. Time mutations on the survivor: trim the duration to the last step
//      plus a settle tail, halve outage windows, snap step times to period
//      boundaries. Each mutation is kept only if the property still holds.
//
// The property is re-evaluated by actually re-running the plan, so the
// result is a true minimal counterexample, not a syntactic guess. Budgeted:
// at most max_trials property evaluations.
#pragma once

#include <cstddef>
#include <functional>

#include "chaos/chaos.h"
#include "common/types.h"

namespace rpm::chaos {

struct ShrinkConfig {
  /// Property-evaluation budget (each evaluation replays a campaign).
  std::size_t max_trials = 128;
  /// Period boundary for the snap-times mutation.
  TimeNs period = sec(5);
  /// Outage windows are never shortened below this.
  TimeNs min_window = sec(5);
  /// Tail kept after the last step when trimming duration.
  TimeNs settle_tail = sec(35);
};

/// True when the candidate plan still exhibits the failure being minimized.
using PropertyFn = std::function<bool(const ChaosPlan&)>;

struct ShrinkResult {
  ChaosPlan plan;              // minimal failing plan found
  std::size_t trials = 0;      // property evaluations spent
  std::size_t steps_before = 0;
  std::size_t steps_after = 0;
};

class Shrinker {
 public:
  explicit Shrinker(ShrinkConfig cfg = {}) : cfg_(cfg) {}

  /// Requires property(plan) == true on entry (the caller observed the
  /// failure); throws std::invalid_argument otherwise. The returned plan
  /// always satisfies the property.
  [[nodiscard]] ShrinkResult shrink(const ChaosPlan& plan,
                                    const PropertyFn& property) const;

 private:
  ShrinkConfig cfg_;
};

}  // namespace rpm::chaos
