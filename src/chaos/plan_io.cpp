#include "chaos/plan_io.h"

#include <stdexcept>

namespace rpm::chaos {

json::Value plan_to_value(const ChaosPlan& plan) {
  json::Value v{json::Object{}};
  v.set("duration_ns", plan.duration);
  v.set("seed", plan.seed);
  v.set("match_grace_ns", plan.match_grace);
  v.set("outage_grace_ns", plan.outage_grace);
  json::Array steps;
  steps.reserve(plan.steps.size());
  for (const ChaosStep& s : plan.steps) {
    json::Value sv{json::Object{}};
    sv.set("kind", chaos_step_name(s.kind));
    sv.set("at_ns", s.at);
    switch (s.kind) {
      case ChaosStep::Kind::kAgentRestart:
        sv.set("host", s.host.value);
        break;
      case ChaosStep::Kind::kPodAnalyzerCrash:
      case ChaosStep::Kind::kPodAnalyzerRestart:
        sv.set("pod", static_cast<std::uint64_t>(s.pod));
        break;
      case ChaosStep::Kind::kInject:
        sv.set("label", s.label);
        sv.set("spec", faults::spec_to_value(s.spec));
        break;
      case ChaosStep::Kind::kClear:
        sv.set("clear_ref", s.clear_ref);
        break;
      default:
        break;
    }
    steps.push_back(std::move(sv));
  }
  v.set("steps", json::Value(std::move(steps)));
  return v;
}

std::string plan_to_json(const ChaosPlan& plan) {
  return plan_to_value(plan).dump(2) + "\n";
}

ChaosPlan plan_from_value(const json::Value& v) {
  if (!v.is_object()) throw std::runtime_error("ChaosPlan: not an object");
  ChaosPlan plan;
  plan.duration = v.get_int("duration_ns", plan.duration);
  plan.seed = static_cast<std::uint64_t>(v.get_int("seed", 0));
  plan.match_grace = v.get_int("match_grace_ns", plan.match_grace);
  plan.outage_grace = v.get_int("outage_grace_ns", plan.outage_grace);
  const json::Value* steps = v.find("steps");
  if (steps == nullptr) return plan;
  for (const json::Value& sv : steps->as_array()) {
    const ChaosStep::Kind kind =
        chaos_step_kind_from_name(sv.get_string("kind"));
    const TimeNs at = sv.get_int("at_ns");
    switch (kind) {
      case ChaosStep::Kind::kControllerCrash:
        plan.controller_crash(at);
        break;
      case ChaosStep::Kind::kControllerRestart:
        plan.controller_restart(at);
        break;
      // Outage windows serialize as their two endpoint steps; rebuild them
      // individually (analyzer_outage() would need the paired step).
      case ChaosStep::Kind::kAnalyzerOutageBegin: {
        ChaosStep s;
        s.kind = kind;
        s.at = at;
        plan.steps.push_back(std::move(s));
        break;
      }
      case ChaosStep::Kind::kAnalyzerOutageEnd: {
        ChaosStep s;
        s.kind = kind;
        s.at = at;
        plan.steps.push_back(std::move(s));
        break;
      }
      case ChaosStep::Kind::kAgentRestart:
        plan.agent_restart(
            at, HostId{static_cast<std::uint32_t>(sv.get_int("host"))});
        break;
      case ChaosStep::Kind::kPodAnalyzerCrash:
        plan.pod_analyzer_crash(at,
                                static_cast<std::size_t>(sv.get_int("pod")));
        break;
      case ChaosStep::Kind::kPodAnalyzerRestart:
        plan.pod_analyzer_restart(at,
                                  static_cast<std::size_t>(sv.get_int("pod")));
        break;
      case ChaosStep::Kind::kInject: {
        const json::Value* spec = sv.find("spec");
        if (spec == nullptr) throw std::runtime_error("inject: missing spec");
        plan.inject(at, sv.get_string("label"),
                    faults::spec_from_value(*spec));
        break;
      }
      case ChaosStep::Kind::kClear:
        plan.clear(at, sv.get_string("clear_ref"));
        break;
    }
  }
  return plan;
}

ChaosPlan plan_from_json(std::string_view text) {
  return plan_from_value(json::Value::parse(text));
}

}  // namespace rpm::chaos
