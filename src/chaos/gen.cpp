#include "chaos/gen.h"

#include <algorithm>
#include <stdexcept>

namespace rpm::chaos {

namespace {

struct Window {
  TimeNs from = 0;
  TimeNs to = 0;
};

bool overlaps(const std::vector<Window>& reserved, TimeNs from, TimeNs to) {
  return std::any_of(reserved.begin(), reserved.end(), [&](const Window& w) {
    return from <= w.to && to >= w.from;
  });
}

}  // namespace

CampaignGen::CampaignGen(CampaignGenConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.duration <= cfg_.settle_tail + cfg_.period) {
    throw std::invalid_argument("CampaignGen: duration too short for tail");
  }
  if (cfg_.time_grid <= 0) {
    throw std::invalid_argument("CampaignGen: time_grid must be positive");
  }
}

ChaosPlan CampaignGen::generate(std::uint64_t seed,
                                const topo::Topology& topo) const {
  Rng rng(seed);
  ChaosPlan plan;
  plan.seed = seed;
  plan.duration = cfg_.duration;

  const TimeNs lo = cfg_.period;                     // after first warm-up
  const TimeNs hi = cfg_.duration - cfg_.settle_tail;
  const auto snap = [&](TimeNs t) {
    return (t / cfg_.time_grid) * cfg_.time_grid;
  };
  const auto pick_time = [&](TimeNs latest) {
    return snap(rng.uniform_int(lo, std::max(lo, latest)));
  };

  // The weighted step menu, with pod-bounce removed on flat deployments.
  std::vector<std::pair<std::string, int>> menu;
  int total_weight = 0;
  for (const auto& [name, weight] : cfg_.step_weights) {
    if (weight <= 0) continue;
    if (name == "pod-bounce" && cfg_.pods < 2) continue;
    menu.emplace_back(name, weight);
    total_weight += weight;
  }
  if (menu.empty() || total_weight == 0) return plan;

  const auto pick_step = [&]() -> const std::string& {
    int roll = static_cast<int>(rng.uniform_int(1, total_weight));
    for (const auto& [name, weight] : menu) {
      roll -= weight;
      if (roll <= 0) return name;
    }
    return menu.back().first;
  };

  // Control-plane windows reserve the shared timeline; the generator tries a
  // handful of placements and drops the event when the timeline is full
  // (dense short campaigns), keeping every emitted plan valid.
  std::vector<Window> reserved;
  const auto reserve_window = [&](TimeNs len) -> TimeNs {
    for (int attempt = 0; attempt < 16; ++attempt) {
      if (hi - len < lo) return kNoTime;
      const TimeNs start = snap(rng.uniform_int(lo, hi - len));
      const TimeNs end = start + len + cfg_.window_spacing;
      if (overlaps(reserved, start, end)) continue;
      reserved.push_back({start, end});
      return start;
    }
    return kNoTime;
  };

  const faults::FaultCatalog& catalog = faults::FaultCatalog::instance();
  const int events =
      static_cast<int>(rng.uniform_int(cfg_.min_events, cfg_.max_events));
  int fault_idx = 0;
  for (int i = 0; i < events; ++i) {
    const std::string& step = pick_step();
    if (step == "controller-bounce" || step == "analyzer-outage" ||
        step == "pod-bounce") {
      const TimeNs len =
          snap(rng.uniform_int(cfg_.min_outage, cfg_.max_outage));
      const TimeNs start = reserve_window(len);
      if (start == kNoTime) continue;
      if (step == "controller-bounce") {
        plan.controller_crash(start).controller_restart(start + len);
      } else if (step == "analyzer-outage") {
        plan.analyzer_outage(start, start + len);
      } else {
        const std::size_t pod = rng.index(cfg_.pods);
        plan.pod_analyzer_crash(start, pod)
            .pod_analyzer_restart(start + len, pod);
      }
    } else if (step == "agent-restart") {
      // A restart's silence shadow is short; reserve a point window so two
      // restarts (or a restart inside an outage) don't stack.
      const TimeNs at = reserve_window(0);
      if (at == kNoTime) continue;
      plan.agent_restart(
          at, HostId{static_cast<std::uint32_t>(rng.index(topo.num_hosts()))});
    } else {  // "inject"
      const std::string& ctor =
          cfg_.fault_ctors.at(rng.index(cfg_.fault_ctors.size()));
      const faults::FaultCatalog::Entry* entry = catalog.find(ctor);
      if (entry == nullptr) {
        throw std::invalid_argument("CampaignGen: unknown fault ctor '" +
                                    ctor + "'");
      }
      const TimeNs hold =
          snap(rng.uniform_int(cfg_.min_fault_hold, cfg_.max_fault_hold));
      const TimeNs at = pick_time(hi - hold);
      const std::string label =
          "f" + std::to_string(fault_idx++) + "-" + ctor;
      plan.inject(at, label, entry->sample(rng, topo));
      if (entry->clearable && rng.chance(cfg_.clear_fault_prob)) {
        plan.clear(std::min(at + hold, hi), label);
      }
    }
  }
  return plan;
}

}  // namespace rpm::chaos
