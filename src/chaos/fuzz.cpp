#include "chaos/fuzz.h"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "chaos/plan_io.h"
#include "core/rpingmesh.h"
#include "faults/faults.h"
#include "host/cluster.h"

namespace rpm::chaos {

topo::ClosConfig DeploymentSpec::clos() const {
  topo::ClosConfig cfg;
  cfg.num_pods = clos_pods;
  cfg.tors_per_pod = tors_per_pod;
  cfg.aggs_per_pod = aggs_per_pod;
  cfg.spines_per_plane = spines_per_plane;
  cfg.hosts_per_tor = hosts_per_tor;
  cfg.rnics_per_host = rnics_per_host;
  cfg.host_link.capacity_gbps = 100.0;
  cfg.fabric_link.capacity_gbps = 100.0;
  return cfg;
}

json::Value DeploymentSpec::to_value() const {
  json::Value v{json::Object{}};
  v.set("cluster_seed", cluster_seed);
  v.set("pods", static_cast<std::uint64_t>(pods));
  v.set("period_ns", period);
  v.set("ingest_threads", static_cast<std::uint64_t>(ingest_threads));
  v.set("clos_pods", clos_pods);
  v.set("tors_per_pod", tors_per_pod);
  v.set("aggs_per_pod", aggs_per_pod);
  v.set("spines_per_plane", spines_per_plane);
  v.set("hosts_per_tor", hosts_per_tor);
  v.set("rnics_per_host", rnics_per_host);
  return v;
}

DeploymentSpec DeploymentSpec::from_value(const json::Value& v) {
  if (!v.is_object()) throw std::runtime_error("DeploymentSpec: not an object");
  DeploymentSpec s;
  s.cluster_seed = static_cast<std::uint64_t>(
      v.get_int("cluster_seed", static_cast<std::int64_t>(s.cluster_seed)));
  s.pods = static_cast<std::size_t>(v.get_int("pods", 1));
  s.period = v.get_int("period_ns", s.period);
  s.ingest_threads = static_cast<std::size_t>(v.get_int("ingest_threads", 0));
  const auto dim = [&](const char* key, std::uint32_t dflt) {
    return static_cast<std::uint32_t>(v.get_int(key, dflt));
  };
  s.clos_pods = dim("clos_pods", s.clos_pods);
  s.tors_per_pod = dim("tors_per_pod", s.tors_per_pod);
  s.aggs_per_pod = dim("aggs_per_pod", s.aggs_per_pod);
  s.spines_per_plane = dim("spines_per_plane", s.spines_per_plane);
  s.hosts_per_tor = dim("hosts_per_tor", s.hosts_per_tor);
  s.rnics_per_host = dim("rnics_per_host", s.rnics_per_host);
  return s;
}

CampaignResult run_campaign(const DeploymentSpec& spec, const ChaosPlan& plan,
                            const OracleConfig& ocfg) {
  host::ClusterConfig ccfg;
  ccfg.seed = spec.cluster_seed;
  host::Cluster cluster(topo::build_clos(spec.clos()), ccfg);
  core::RPingmeshConfig rcfg;
  rcfg.analyzer.period = spec.period;
  rcfg.analyzer.ingest.threads = spec.ingest_threads;
  rcfg.federation.pods = spec.pods;
  core::RPingmesh rpm(cluster, rcfg);
  faults::FaultInjector injector(cluster);
  rpm.start();

  CampaignResult res;
  res.report = ChaosRunner(cluster, rpm, injector).run(plan);
  OracleConfig oc = ocfg;
  oc.period = spec.period;
  res.oracle = check_invariants(res.report, rpm, oc);
  return res;
}

namespace {

bool violates_any(const OracleReport& oracle,
                  const std::vector<InvariantViolation>& original) {
  for (const InvariantViolation& v : oracle.violations) {
    for (const InvariantViolation& o : original) {
      if (v.oracle == o.oracle) return true;
    }
  }
  return false;
}

}  // namespace

FuzzReport run_fuzz(const FuzzConfig& cfg) {
  FuzzReport rep;
  rep.base_seed = cfg.base_seed;
  rep.num_seeds = cfg.num_seeds;

  for (int i = 0; i < cfg.num_seeds; ++i) {
    const std::uint64_t seed = cfg.base_seed + static_cast<std::uint64_t>(i);

    DeploymentSpec spec = cfg.deployment;
    if (cfg.alternate_pods >= 2 && i % 2 == 1) spec.pods = cfg.alternate_pods;

    CampaignGenConfig gcfg = cfg.gen;
    gcfg.pods = spec.pods;
    gcfg.period = spec.period;
    const CampaignGen gen(gcfg);

    // Generation only needs topology shape; build it once, cheaply.
    const topo::Topology topo = topo::build_clos(spec.clos());
    const ChaosPlan plan = gen.generate(seed, topo);

    FuzzReport::SeedResult sr;
    sr.seed = seed;
    sr.pods = spec.pods;
    sr.steps = plan.steps.size();

    CampaignResult first = run_campaign(spec, plan, cfg.oracle);
    if (cfg.check_determinism) {
      const CampaignResult second = run_campaign(spec, plan, cfg.oracle);
      sr.deterministic =
          first.report.to_json() == second.report.to_json();
      if (!sr.deterministic) {
        first.oracle.violations.push_back(
            {"determinism", "same-seed reruns produced different reports"});
      }
    }
    sr.periods = first.report.periods;
    sr.problems = first.report.problems_total;
    sr.true_positives = first.report.true_positives;
    sr.false_positives = first.report.false_positives;
    sr.precision = first.report.precision;
    sr.recall = first.report.recall;
    sr.violations = first.oracle.violations;

    if (!first.oracle.ok()) {
      ++rep.failures;
      if (cfg.shrink && !plan.steps.empty()) {
        const std::vector<InvariantViolation> original =
            first.oracle.violations;
        ShrinkConfig scfg = cfg.shrink_cfg;
        scfg.period = spec.period;
        const PropertyFn property = [&](const ChaosPlan& candidate) {
          return violates_any(
              run_campaign(spec, candidate, cfg.oracle).oracle, original);
        };
        try {
          const ShrinkResult shrunk = Shrinker(scfg).shrink(plan, property);
          sr.minimal_plan_json = plan_to_json(shrunk.plan);
          sr.shrink_trials = shrunk.trials;
          if (!cfg.corpus_dir.empty()) {
            json::Value artifact{json::Object{}};
            artifact.set("deployment", spec.to_value());
            artifact.set("plan", plan_to_value(shrunk.plan));
            const std::string path =
                cfg.corpus_dir + "/seed" + std::to_string(seed) + ".json";
            std::ofstream out(path);
            out << artifact.dump(2) << "\n";
          }
        } catch (const std::invalid_argument&) {
          // The failure did not reproduce under the shrinker (e.g. a pure
          // determinism flake); keep the unshrunk violation record.
        }
      }
    }
    rep.seeds.push_back(std::move(sr));
  }
  return rep;
}

CampaignResult replay_artifact(const std::string& artifact_json,
                               const OracleConfig& ocfg) {
  const json::Value v = json::Value::parse(artifact_json);
  const json::Value* dep = v.find("deployment");
  const json::Value* plan = v.find("plan");
  if (dep == nullptr || plan == nullptr) {
    throw std::runtime_error("artifact: needs deployment + plan");
  }
  return run_campaign(DeploymentSpec::from_value(*dep), plan_from_value(*plan),
                      ocfg);
}

std::string FuzzReport::to_json() const {
  json::Value v{json::Object{}};
  v.set("base_seed", base_seed);
  v.set("num_seeds", static_cast<std::int64_t>(num_seeds));
  v.set("failures", static_cast<std::int64_t>(failures));
  json::Array arr;
  arr.reserve(seeds.size());
  for (const SeedResult& s : seeds) {
    json::Value sv{json::Object{}};
    sv.set("seed", s.seed);
    sv.set("pods", static_cast<std::uint64_t>(s.pods));
    sv.set("steps", static_cast<std::uint64_t>(s.steps));
    sv.set("periods", static_cast<std::uint64_t>(s.periods));
    sv.set("problems", static_cast<std::uint64_t>(s.problems));
    sv.set("true_positives", static_cast<std::uint64_t>(s.true_positives));
    sv.set("false_positives", static_cast<std::uint64_t>(s.false_positives));
    sv.set("precision", s.precision);
    sv.set("recall", s.recall);
    sv.set("deterministic", s.deterministic);
    json::Array viols;
    for (const InvariantViolation& iv : s.violations) {
      json::Value vv{json::Object{}};
      vv.set("oracle", iv.oracle);
      vv.set("detail", iv.detail);
      viols.push_back(std::move(vv));
    }
    sv.set("violations", json::Value(std::move(viols)));
    if (!s.minimal_plan_json.empty()) {
      sv.set("minimal_plan", json::Value::parse(s.minimal_plan_json));
      sv.set("shrink_trials", static_cast<std::uint64_t>(s.shrink_trials));
    }
    arr.push_back(std::move(sv));
  }
  v.set("seeds", json::Value(std::move(arr)));
  return v.dump(2) + "\n";
}

}  // namespace rpm::chaos
