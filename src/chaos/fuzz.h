// chaos fuzzing harness: seed batches -> generated campaigns -> oracles ->
// shrinking -> corpus artifacts. The top of the property-based chaos stack
// (CampaignGen samples, ChaosRunner executes, oracle.h judges, Shrinker
// minimizes); this file owns the loop and the deterministic FuzzReport JSON
// that CI byte-diffs across two runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "chaos/gen.h"
#include "chaos/oracle.h"
#include "chaos/shrink.h"
#include "common/json.h"
#include "topo/topology.h"

namespace rpm::chaos {

/// Everything needed to rebuild the deployment a plan ran against — stored
/// next to the plan in corpus artifacts so a counterexample replays on the
/// topology that provoked it.
struct DeploymentSpec {
  std::uint64_t cluster_seed = 7;
  std::size_t pods = 1;  // 1 = flat, >= 2 federated
  TimeNs period = sec(5);
  std::size_t ingest_threads = 0;
  // Clos dimensions (kept small: a fuzz campaign runs dozens of these).
  std::uint32_t clos_pods = 2;
  std::uint32_t tors_per_pod = 2;
  std::uint32_t aggs_per_pod = 2;
  std::uint32_t spines_per_plane = 2;
  std::uint32_t hosts_per_tor = 2;
  std::uint32_t rnics_per_host = 2;

  [[nodiscard]] topo::ClosConfig clos() const;
  [[nodiscard]] json::Value to_value() const;
  static DeploymentSpec from_value(const json::Value& v);
};

/// Build a fresh deployment from `spec`, run `plan` on it, and judge the
/// result. Deterministic: same (spec, plan) => byte-identical report JSON.
struct CampaignResult {
  ChaosReport report;
  OracleReport oracle;
};
CampaignResult run_campaign(const DeploymentSpec& spec, const ChaosPlan& plan,
                            const OracleConfig& ocfg);

struct FuzzConfig {
  std::uint64_t base_seed = 1;
  int num_seeds = 25;
  DeploymentSpec deployment;
  /// Odd seeds run federated with this many pods (0 disables alternation).
  std::size_t alternate_pods = 2;
  CampaignGenConfig gen;
  OracleConfig oracle;
  /// Run every seed twice and require byte-identical ChaosReport JSON.
  bool check_determinism = true;
  /// Shrink failing plans and write {deployment, plan} JSON artifacts here
  /// (empty = no artifacts).
  bool shrink = true;
  ShrinkConfig shrink_cfg;
  std::string corpus_dir;
};

struct FuzzReport {
  struct SeedResult {
    std::uint64_t seed = 0;
    std::size_t pods = 1;
    std::size_t steps = 0;
    std::size_t periods = 0;
    std::size_t problems = 0;
    std::size_t true_positives = 0;
    std::size_t false_positives = 0;
    double precision = 1.0;
    double recall = 1.0;
    bool deterministic = true;
    std::vector<InvariantViolation> violations;
    /// Present only when the seed failed and shrinking ran.
    std::string minimal_plan_json;
    std::size_t shrink_trials = 0;
  };
  std::uint64_t base_seed = 0;
  int num_seeds = 0;
  int failures = 0;
  std::vector<SeedResult> seeds;

  [[nodiscard]] bool ok() const { return failures == 0; }
  /// Deterministic pretty JSON with trailing newline (CI byte-diffs it).
  [[nodiscard]] std::string to_json() const;
};

/// The fuzz loop. Writes one corpus artifact per failing seed when
/// cfg.shrink is set and cfg.corpus_dir is non-empty.
FuzzReport run_fuzz(const FuzzConfig& cfg);

/// Replay one corpus artifact ({"deployment": ..., "plan": ...}); returns
/// the judged result so tests can assert the oracles stay clean (or a
/// regression stays fixed).
CampaignResult replay_artifact(const std::string& artifact_json,
                               const OracleConfig& ocfg = {});

}  // namespace rpm::chaos
