// chaos::CampaignGen — seeded random ChaosPlan generator (the ROADMAP's
// "randomized chaos generator (seeded event times/targets + shrinking)").
//
// Samples a *valid* campaign from a weighted step catalog: controller
// crash/restart pairs, Analyzer outage windows, Agent restarts, pod-Analyzer
// bounces (federated deployments), and fault injections drawn from
// faults::FaultCatalog. Validity constraints keep generated plans inside the
// envelope the scoring rubric defines — the point is to randomize *within*
// the supported behaviour space so every oracle violation is a real bug,
// not a malformed plan:
//
//  * control-plane events serialize: each window (crash..restart,
//    outage begin..end) reserves [start, end + window_spacing] on a shared
//    timeline, so recovery from one event is observable before the next;
//  * events land on a coarse time grid (deliberately colliding timestamps —
//    the runner's insertion-order tie-break is part of what's under test);
//  * everything lands in [period, duration - settle_tail]: the deployment
//    has warmed up, and the tail leaves room for recovery scoring;
//  * injected faults are cleared before the tail or left active to the end
//    (both matchable states; a clear inside the tail would race scoring).
//
// Same (seed, config, topology) => identical plan, byte for byte through
// plan_to_json — the fuzzer's reproducibility contract.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "chaos/chaos.h"
#include "common/rng.h"
#include "common/types.h"
#include "topo/topology.h"

namespace rpm::chaos {

struct CampaignGenConfig {
  TimeNs duration = sec(120);
  /// Analyzer period of the target deployment (aligns the settle math).
  TimeNs period = sec(5);
  /// Event times snap to this grid (collisions are intentional).
  TimeNs time_grid = sec(1);
  int min_events = 4;
  int max_events = 9;
  /// Pod count of the target deployment; < 2 disables pod-bounce steps.
  std::size_t pods = 0;
  TimeNs min_outage = sec(8);
  TimeNs max_outage = sec(20);
  /// Quiet tail before `duration` reserved for recovery scoring.
  TimeNs settle_tail = sec(35);
  /// Gap reserved after each control-plane window before the next may start.
  TimeNs window_spacing = sec(15);
  TimeNs min_fault_hold = sec(15);
  TimeNs max_fault_hold = sec(30);
  /// Probability a clearable fault gets a mid-campaign clear() step (the
  /// rest stay active to the end).
  double clear_fault_prob = 0.6;
  /// Weighted step menu. Names: "controller-bounce", "analyzer-outage",
  /// "agent-restart", "pod-bounce", "inject".
  std::vector<std::pair<std::string, int>> step_weights = {
      {"controller-bounce", 2}, {"analyzer-outage", 2},
      {"agent-restart", 2},     {"pod-bounce", 2},
      {"inject", 5},
  };
  /// FaultCatalog constructors the "inject" step draws from. Defaults to
  /// the set whose verdicts the scoring rubric fully attributes.
  std::vector<std::string> fault_ctors = {
      "host-down",     "corruption",          "rnic-down",
      "cpu-overload",  "agent-cpu-occupation", "control-plane-degradation",
  };
};

class CampaignGen {
 public:
  explicit CampaignGen(CampaignGenConfig cfg = {});

  /// Deterministic: same (seed, config, topology) => identical plan.
  [[nodiscard]] ChaosPlan generate(std::uint64_t seed,
                                   const topo::Topology& topo) const;

  [[nodiscard]] const CampaignGenConfig& config() const { return cfg_; }

 private:
  CampaignGenConfig cfg_;
};

}  // namespace rpm::chaos
