#include "chaos/chaos.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "telemetry/trace.h"

namespace rpm::chaos {

const char* chaos_step_name(ChaosStep::Kind k) {
  switch (k) {
    case ChaosStep::Kind::kControllerCrash: return "controller-crash";
    case ChaosStep::Kind::kControllerRestart: return "controller-restart";
    case ChaosStep::Kind::kAnalyzerOutageBegin: return "analyzer-outage-begin";
    case ChaosStep::Kind::kAnalyzerOutageEnd: return "analyzer-outage-end";
    case ChaosStep::Kind::kAgentRestart: return "agent-restart";
    case ChaosStep::Kind::kPodAnalyzerCrash: return "pod-analyzer-crash";
    case ChaosStep::Kind::kPodAnalyzerRestart: return "pod-analyzer-restart";
    case ChaosStep::Kind::kInject: return "inject";
    case ChaosStep::Kind::kClear: return "clear";
  }
  return "?";
}

ChaosStep::Kind chaos_step_kind_from_name(std::string_view name) {
  using Kind = ChaosStep::Kind;
  for (const Kind k :
       {Kind::kControllerCrash, Kind::kControllerRestart,
        Kind::kAnalyzerOutageBegin, Kind::kAnalyzerOutageEnd,
        Kind::kAgentRestart, Kind::kPodAnalyzerCrash, Kind::kPodAnalyzerRestart,
        Kind::kInject, Kind::kClear}) {
    if (name == chaos_step_name(k)) return k;
  }
  throw std::invalid_argument("ChaosStep: unknown kind '" + std::string(name) +
                              "'");
}

ChaosPlan& ChaosPlan::controller_crash(TimeNs at) {
  ChaosStep s;
  s.kind = ChaosStep::Kind::kControllerCrash;
  s.at = at;
  steps.push_back(std::move(s));
  return *this;
}

ChaosPlan& ChaosPlan::controller_restart(TimeNs at) {
  ChaosStep s;
  s.kind = ChaosStep::Kind::kControllerRestart;
  s.at = at;
  steps.push_back(std::move(s));
  return *this;
}

ChaosPlan& ChaosPlan::analyzer_outage(TimeNs from, TimeNs to) {
  if (to <= from) throw std::invalid_argument("analyzer_outage: to <= from");
  ChaosStep b;
  b.kind = ChaosStep::Kind::kAnalyzerOutageBegin;
  b.at = from;
  steps.push_back(std::move(b));
  ChaosStep e;
  e.kind = ChaosStep::Kind::kAnalyzerOutageEnd;
  e.at = to;
  steps.push_back(std::move(e));
  return *this;
}

ChaosPlan& ChaosPlan::agent_restart(TimeNs at, HostId host) {
  ChaosStep s;
  s.kind = ChaosStep::Kind::kAgentRestart;
  s.at = at;
  s.host = host;
  s.label = "agent-restart/h" + std::to_string(host.value);
  steps.push_back(std::move(s));
  return *this;
}

ChaosPlan& ChaosPlan::pod_analyzer_crash(TimeNs at, std::size_t pod) {
  ChaosStep s;
  s.kind = ChaosStep::Kind::kPodAnalyzerCrash;
  s.at = at;
  s.pod = pod;
  s.label = "pod-analyzer-crash/p" + std::to_string(pod);
  steps.push_back(std::move(s));
  return *this;
}

ChaosPlan& ChaosPlan::pod_analyzer_restart(TimeNs at, std::size_t pod) {
  ChaosStep s;
  s.kind = ChaosStep::Kind::kPodAnalyzerRestart;
  s.at = at;
  s.pod = pod;
  s.label = "pod-analyzer-restart/p" + std::to_string(pod);
  steps.push_back(std::move(s));
  return *this;
}

ChaosPlan& ChaosPlan::inject(TimeNs at, std::string label,
                             faults::FaultSpec spec) {
  if (!spec.valid()) throw std::invalid_argument("inject: spec required");
  ChaosStep s;
  s.kind = ChaosStep::Kind::kInject;
  s.at = at;
  s.label = std::move(label);
  s.spec = std::move(spec);
  steps.push_back(std::move(s));
  return *this;
}

ChaosPlan& ChaosPlan::clear(TimeNs at, std::string label) {
  ChaosStep s;
  s.kind = ChaosStep::Kind::kClear;
  s.at = at;
  s.clear_ref = std::move(label);
  steps.push_back(std::move(s));
  return *this;
}

namespace {

/// Half-open-ish time window [from, to] on the campaign-relative axis.
struct Window {
  TimeNs from = 0;
  TimeNs to = 0;
  [[nodiscard]] bool contains(TimeNs t) const { return t >= from && t <= to; }
  [[nodiscard]] bool overlaps(TimeNs a, TimeNs b) const {
    return a <= to && b >= from;
  }
};

void append_json_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_f6(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out += buf;
}

}  // namespace

ChaosRunner::ChaosRunner(host::Cluster& cluster, core::RPingmesh& rpm,
                         faults::FaultInjector& injector)
    : cluster_(cluster), rpm_(rpm), injector_(injector) {}

ChaosReport ChaosRunner::run(const ChaosPlan& plan) {
  sim::Scheduler& sched = cluster_.scheduler();
  const TimeNs t0 = sched.now();
  const topo::Topology& topo = cluster_.topology();

  // ---- execute the timeline ----

  auto truths = std::make_shared<std::vector<GroundTruth>>();
  // Steps execute in `at` order; ties break by plan position (schedule_at is
  // FIFO per timestamp only if the scheduler is; sort explicitly to be
  // deterministic regardless).
  std::vector<const ChaosStep*> ordered;
  ordered.reserve(plan.steps.size());
  for (const ChaosStep& s : plan.steps) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const ChaosStep* a, const ChaosStep* b) {
                     return a->at < b->at;
                   });

  for (const ChaosStep* sp : ordered) {
    const ChaosStep& step = *sp;
    sched.schedule_at(t0 + step.at, [this, &step, t0, truths] {
      telemetry::tracer().instant(
          std::string("chaos.") + chaos_step_name(step.kind), "chaos");
      const TimeNs rel = cluster_.scheduler().now() - t0;
      switch (step.kind) {
        case ChaosStep::Kind::kControllerCrash:
          rpm_.crash_controller();
          return;
        case ChaosStep::Kind::kControllerRestart:
          rpm_.restart_controller();
          return;
        case ChaosStep::Kind::kAnalyzerOutageBegin:
          rpm_.begin_analyzer_outage();
          return;
        case ChaosStep::Kind::kAnalyzerOutageEnd:
          rpm_.end_analyzer_outage();
          return;
        case ChaosStep::Kind::kPodAnalyzerCrash:
          rpm_.crash_pod_analyzer(step.pod);
          return;
        case ChaosStep::Kind::kPodAnalyzerRestart:
          rpm_.restart_pod_analyzer(step.pod);
          return;
        case ChaosStep::Kind::kAgentRestart: {
          // Ground truth first (the injector only flags QPN resets; the
          // restart itself recreates the QPs), then the actual restart.
          const int h = injector_.inject_qpn_reset(step.host);
          GroundTruth gt;
          gt.label = step.label;
          gt.rec = injector_.record(h);
          gt.injected_at = rel;
          truths->push_back(std::move(gt));
          rpm_.agent(step.host).restart();
          return;
        }
        case ChaosStep::Kind::kInject: {
          const int h =
              faults::FaultCatalog::instance().apply(injector_, step.spec);
          GroundTruth gt;
          gt.label = step.label;
          gt.rec = injector_.record(h);
          gt.injected_at = rel;
          truths->push_back(std::move(gt));
          return;
        }
        case ChaosStep::Kind::kClear: {
          for (GroundTruth& gt : *truths) {
            if (gt.label != step.clear_ref || gt.cleared_at != kNoTime) {
              continue;
            }
            injector_.clear(gt.rec.handle);
            gt.cleared_at = rel;
            return;
          }
          throw std::logic_error("ChaosPlan: clear() of unknown label '" +
                                 step.clear_ref + "'");
        }
      }
    });
  }

  const std::size_t history_before = rpm_.scored_history().size();
  cluster_.run_for(plan.duration);

  // ---- build outage windows from the plan ----

  const auto first_after = [&](ChaosStep::Kind kind, TimeNs at) -> TimeNs {
    TimeNs best = plan.duration;
    for (const ChaosStep* sp : ordered) {
      if (sp->kind == kind && sp->at >= at && sp->at < best) best = sp->at;
    }
    return best;
  };
  std::vector<Window> outage_windows;  // control-plane blackouts + grace
  std::vector<Window> restart_windows; // per-agent-restart collateral
  for (const ChaosStep* sp : ordered) {
    switch (sp->kind) {
      case ChaosStep::Kind::kControllerCrash:
        outage_windows.push_back(
            {sp->at, first_after(ChaosStep::Kind::kControllerRestart, sp->at) +
                         plan.outage_grace});
        break;
      case ChaosStep::Kind::kAnalyzerOutageBegin:
        outage_windows.push_back(
            {sp->at, first_after(ChaosStep::Kind::kAnalyzerOutageEnd, sp->at) +
                         plan.outage_grace});
        break;
      case ChaosStep::Kind::kPodAnalyzerCrash: {
        // Match the restart of the SAME pod (other pods keep analyzing).
        TimeNs best = plan.duration;
        for (const ChaosStep* rp : ordered) {
          if (rp->kind == ChaosStep::Kind::kPodAnalyzerRestart &&
              rp->pod == sp->pod && rp->at >= sp->at && rp->at < best) {
            best = rp->at;
          }
        }
        outage_windows.push_back({sp->at, best + plan.outage_grace});
        break;
      }
      case ChaosStep::Kind::kAgentRestart:
        restart_windows.push_back({sp->at, sp->at + plan.outage_grace});
        break;
      default:
        break;
    }
  }

  // ---- score every period the campaign produced ----

  ChaosReport rep;
  rep.seed = plan.seed;
  rep.duration = plan.duration;

  const core::AnalyzerConfig& acfg = rpm_.analyzer_config();
  std::vector<bool> matched(truths->size(), false);

  // Kinds that are probe noise by design: reported, never recalled, and
  // not "active faults" for mislocalization purposes.
  static constexpr faults::FaultKind kNoiseKinds[] = {
      faults::FaultKind::kQpnReset, faults::FaultKind::kAgentCpuOccupation,
      faults::FaultKind::kControlPlaneDegradation};
  const auto is_noise_kind = [&](faults::FaultKind k) {
    return std::find(std::begin(kNoiseKinds), std::end(kNoiseKinds), k) !=
           std::end(kNoiseKinds);
  };

  // A fault is matchable while active, plus grace for verdict lag.
  const auto gt_active = [&](const GroundTruth& gt, TimeNs t) {
    const TimeNs end =
        (gt.cleared_at == kNoTime ? plan.duration : gt.cleared_at) +
        plan.match_grace;
    return t >= gt.injected_at && t <= end;
  };
  const auto link_matches = [&](const faults::FaultRecord& rec,
                                const core::Problem& p) {
    if (!rec.link.valid()) return false;
    const topo::Link& l = topo.link(rec.link);
    for (LinkId s : p.suspect_links) {
      if (s == rec.link || s == l.peer) return true;
    }
    // Switch-granularity localization: either endpoint switch counts.
    for (SwitchId s : p.suspect_switches) {
      if ((l.from.is_switch() && l.from.as_switch() == s) ||
          (l.to.is_switch() && l.to.as_switch() == s)) {
        return true;
      }
    }
    return false;
  };

  const std::deque<core::PeriodReport>& history = rpm_.scored_history();
  for (std::size_t pi = history_before; pi < history.size(); ++pi) {
    const core::PeriodReport& period = history[pi];
    const TimeNs period_end = period.period_end - t0;
    ChaosReport::PeriodSummary ps;
    ps.period_end = period_end;
    ps.records = period.records_processed;
    ps.problems = period.problems.size();
    for (const Window& w : outage_windows) {
      if (w.contains(period_end)) ps.in_outage_window = true;
    }

    for (const core::Problem& p : period.problems) {
      ++rep.problems_total;
      using Cat = core::ProblemCategory;
      if (p.category == Cat::kQpnResetNoise ||
          p.category == Cat::kAgentCpuNoise) {
        ++rep.noise_problems;
        continue;
      }
      if (p.category == Cat::kHighNetworkRtt) {
        // Congestion verdicts have no injected ground truth here (they
        // emerge from collateral traffic shifts); reported, not scored.
        ++rep.unscored_problems;
        continue;
      }

      bool is_tp = false;
      for (std::size_t gi = 0; gi < truths->size(); ++gi) {
        const GroundTruth& gt = (*truths)[gi];
        if (!gt_active(gt, period_end)) continue;
        const faults::FaultKind k = gt.rec.kind;
        bool hit = false;
        switch (p.category) {
          case Cat::kSwitchNetworkProblem:
            hit = faults::is_network_fault(k) && !faults::is_rnic_fault(k) &&
                  (link_matches(gt.rec, p) ||
                   (gt.rec.sw.valid() &&
                    std::find(p.suspect_switches.begin(),
                              p.suspect_switches.end(),
                              gt.rec.sw) != p.suspect_switches.end()));
            break;
          case Cat::kRnicProblem:
            hit = faults::is_rnic_fault(k) && gt.rec.rnic.valid() &&
                  p.rnic == gt.rec.rnic;
            break;
          case Cat::kHostDown:
            hit = k == faults::FaultKind::kHostDown && gt.rec.host.valid() &&
                  p.host == gt.rec.host;
            break;
          case Cat::kHighProcessingDelay:
            hit = (k == faults::FaultKind::kCpuOverload ||
                   k == faults::FaultKind::kAgentCpuOccupation) &&
                  gt.rec.host.valid() && p.host == gt.rec.host;
            break;
          default:
            break;
        }
        if (hit) {
          is_tp = true;
          matched[gi] = true;
        }
      }
      if (is_tp) {
        ++rep.true_positives;
        continue;
      }

      // Unmatched host-down: explainable by a control-plane blackout or an
      // Agent restart? The Analyzer saw real silence; the cause was the
      // campaign, not the host. Reported as collateral, not a false claim.
      if (p.category == Cat::kHostDown) {
        const TimeNs silence_from =
            period_end - acfg.host_silence_threshold - acfg.period;
        bool collateral = false;
        for (const Window& w : outage_windows) {
          if (w.overlaps(silence_from, period_end)) collateral = true;
        }
        for (const Window& w : restart_windows) {
          if (w.overlaps(silence_from, period_end)) collateral = true;
        }
        if (collateral) {
          ++rep.collateral_host_down;
          continue;
        }
      }

      // A scored fault in flight explains an unmatched claim as wrong (or
      // premature) *localization* of a real event — a quality problem, but
      // not a phantom conjured by the control-plane campaign.
      bool fault_active = false;
      for (const GroundTruth& gt : *truths) {
        if (!is_noise_kind(gt.rec.kind) && gt_active(gt, period_end)) {
          fault_active = true;
        }
      }
      if (fault_active) {
        ++rep.mislocalized;
        continue;
      }

      ++rep.false_positives;
      ++ps.false_positives;
      if (p.category == Cat::kSwitchNetworkProblem) {
        ++rep.switch_false_positives;
      }
      for (const Window& w : outage_windows) {
        if (w.contains(period_end)) {
          ++rep.outage_false_positives;
          break;
        }
      }
    }
    rep.period_summaries.push_back(ps);
  }
  rep.periods = rep.period_summaries.size();

  // ---- ground-truth scoring (recall) ----

  std::size_t scored_truths = 0;
  std::size_t recalled = 0;
  for (std::size_t gi = 0; gi < truths->size(); ++gi) {
    const GroundTruth& gt = (*truths)[gi];
    ChaosReport::GroundTruthScore s;
    s.label = gt.label;
    s.kind = faults::fault_kind_name(gt.rec.kind);
    s.injected_at = gt.injected_at;
    s.cleared_at = gt.cleared_at;
    s.matched = matched[gi];
    s.scored = !is_noise_kind(gt.rec.kind);
    if (s.scored) {
      ++scored_truths;
      if (s.matched) ++recalled;
    }
    rep.ground_truths.push_back(std::move(s));
  }
  const std::size_t claims =
      rep.true_positives + rep.false_positives + rep.mislocalized;
  rep.precision = claims == 0
                      ? 1.0
                      : static_cast<double>(rep.true_positives) /
                            static_cast<double>(claims);
  rep.recall = scored_truths == 0 ? 1.0
                                  : static_cast<double>(recalled) /
                                        static_cast<double>(scored_truths);

  // ---- periods-to-recovery after each control-plane event ----

  for (const ChaosStep* sp : ordered) {
    switch (sp->kind) {
      case ChaosStep::Kind::kControllerCrash:
      case ChaosStep::Kind::kControllerRestart:
      case ChaosStep::Kind::kAnalyzerOutageBegin:
      case ChaosStep::Kind::kAnalyzerOutageEnd:
      case ChaosStep::Kind::kPodAnalyzerCrash:
      case ChaosStep::Kind::kPodAnalyzerRestart:
        break;
      default:
        continue;
    }
    ChaosReport::Recovery r;
    r.event = chaos_step_name(sp->kind);
    r.at = sp->at;
    int count = 0;
    for (const ChaosReport::PeriodSummary& ps : rep.period_summaries) {
      if (ps.period_end <= sp->at) continue;
      ++count;
      if (ps.records > 0 && ps.false_positives == 0) {
        r.periods_to_recover = count;
        break;
      }
    }
    rep.recoveries.push_back(std::move(r));
  }

  return rep;
}

std::string ChaosReport::to_json() const {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"seed\": " + std::to_string(seed);
  out += ",\n  \"duration_ns\": " + std::to_string(duration);
  out += ",\n  \"periods\": " + std::to_string(periods);
  out += ",\n  \"problems_total\": " + std::to_string(problems_total);
  out += ",\n  \"true_positives\": " + std::to_string(true_positives);
  out += ",\n  \"false_positives\": " + std::to_string(false_positives);
  out += ",\n  \"switch_false_positives\": " +
         std::to_string(switch_false_positives);
  out += ",\n  \"outage_false_positives\": " +
         std::to_string(outage_false_positives);
  out += ",\n  \"mislocalized\": " + std::to_string(mislocalized);
  out += ",\n  \"collateral_host_down\": " +
         std::to_string(collateral_host_down);
  out += ",\n  \"noise_problems\": " + std::to_string(noise_problems);
  out += ",\n  \"unscored_problems\": " + std::to_string(unscored_problems);
  out += ",\n  \"precision\": ";
  append_f6(out, precision);
  out += ",\n  \"recall\": ";
  append_f6(out, recall);
  out += ",\n  \"ground_truths\": [";
  for (std::size_t i = 0; i < ground_truths.size(); ++i) {
    const GroundTruthScore& g = ground_truths[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"label\": \"";
    append_json_escaped(out, g.label);
    out += "\", \"kind\": \"";
    append_json_escaped(out, g.kind);
    out += "\", \"scored\": ";
    out += g.scored ? "true" : "false";
    out += ", \"matched\": ";
    out += g.matched ? "true" : "false";
    out += ", \"injected_at_ns\": " + std::to_string(g.injected_at);
    out += ", \"cleared_at_ns\": ";
    out += g.cleared_at == kNoTime ? "null" : std::to_string(g.cleared_at);
    out += "}";
  }
  out += "\n  ],\n  \"recoveries\": [";
  for (std::size_t i = 0; i < recoveries.size(); ++i) {
    const Recovery& r = recoveries[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"event\": \"";
    append_json_escaped(out, r.event);
    out += "\", \"at_ns\": " + std::to_string(r.at);
    out += ", \"periods_to_recover\": " + std::to_string(r.periods_to_recover);
    out += "}";
  }
  out += "\n  ],\n  \"period_summaries\": [";
  for (std::size_t i = 0; i < period_summaries.size(); ++i) {
    const PeriodSummary& p = period_summaries[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"period_end_ns\": " + std::to_string(p.period_end);
    out += ", \"records\": " + std::to_string(p.records);
    out += ", \"problems\": " + std::to_string(p.problems);
    out += ", \"false_positives\": " + std::to_string(p.false_positives);
    out += ", \"in_outage_window\": ";
    out += p.in_outage_window ? "true" : "false";
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace rpm::chaos
