#include "chaos/shrink.h"

#include <algorithm>
#include <stdexcept>

namespace rpm::chaos {

namespace {

using Group = std::vector<std::size_t>;  // step indices, ascending

/// Steps that only make sense together shrink together. Pairing is by plan
/// order: a crash adopts the first later unpaired restart (same pod for pod
/// bounces), an inject adopts its label's clear.
std::vector<Group> build_groups(const ChaosPlan& plan) {
  const std::size_t n = plan.steps.size();
  std::vector<bool> used(n, false);
  std::vector<Group> groups;
  const auto adopt = [&](std::size_t i, auto&& wanted) {
    Group g{i};
    used[i] = true;
    for (std::size_t j = 0; j < n; ++j) {
      if (!used[j] && wanted(plan.steps[j])) {
        g.push_back(j);
        used[j] = true;
        break;
      }
    }
    groups.push_back(std::move(g));
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (used[i]) continue;
    const ChaosStep& s = plan.steps[i];
    switch (s.kind) {
      case ChaosStep::Kind::kControllerCrash:
        adopt(i, [&](const ChaosStep& t) {
          return t.kind == ChaosStep::Kind::kControllerRestart && t.at >= s.at;
        });
        break;
      case ChaosStep::Kind::kAnalyzerOutageBegin:
        adopt(i, [&](const ChaosStep& t) {
          return t.kind == ChaosStep::Kind::kAnalyzerOutageEnd && t.at >= s.at;
        });
        break;
      case ChaosStep::Kind::kPodAnalyzerCrash:
        adopt(i, [&](const ChaosStep& t) {
          return t.kind == ChaosStep::Kind::kPodAnalyzerRestart &&
                 t.pod == s.pod && t.at >= s.at;
        });
        break;
      case ChaosStep::Kind::kInject:
        adopt(i, [&](const ChaosStep& t) {
          return t.kind == ChaosStep::Kind::kClear && t.clear_ref == s.label;
        });
        break;
      default:
        used[i] = true;
        groups.push_back({i});
        break;
    }
  }
  return groups;
}

ChaosPlan subset(const ChaosPlan& plan, const std::vector<Group>& groups) {
  std::vector<std::size_t> keep;
  for (const Group& g : groups) keep.insert(keep.end(), g.begin(), g.end());
  std::sort(keep.begin(), keep.end());
  ChaosPlan out;
  out.duration = plan.duration;
  out.seed = plan.seed;
  out.match_grace = plan.match_grace;
  out.outage_grace = plan.outage_grace;
  for (const std::size_t i : keep) out.steps.push_back(plan.steps[i]);
  return out;
}

/// The begin step of each paired window in `plan` with its end index.
std::vector<std::pair<std::size_t, std::size_t>> window_pairs(
    const ChaosPlan& plan) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (const Group& g : build_groups(plan)) {
    if (g.size() != 2) continue;
    const ChaosStep::Kind k = plan.steps[g[0]].kind;
    if (k == ChaosStep::Kind::kControllerCrash ||
        k == ChaosStep::Kind::kAnalyzerOutageBegin ||
        k == ChaosStep::Kind::kPodAnalyzerCrash) {
      pairs.emplace_back(g[0], g[1]);
    }
  }
  return pairs;
}

}  // namespace

ShrinkResult Shrinker::shrink(const ChaosPlan& plan,
                              const PropertyFn& property) const {
  if (!property) throw std::invalid_argument("Shrinker: property required");
  ShrinkResult res;
  res.steps_before = plan.steps.size();
  const auto eval = [&](const ChaosPlan& candidate) {
    if (res.trials >= cfg_.max_trials) return false;
    ++res.trials;
    return property(candidate);
  };
  if (!eval(plan)) {
    throw std::invalid_argument(
        "Shrinker: property does not hold on the input plan");
  }

  // ---- ddmin over step groups (complement reduction) ----

  std::vector<Group> cur = build_groups(plan);
  std::size_t granularity = 2;
  while (cur.size() >= 2 && granularity <= cur.size() &&
         res.trials < cfg_.max_trials) {
    const std::size_t chunk =
        (cur.size() + granularity - 1) / granularity;  // ceil
    bool reduced = false;
    for (std::size_t c = 0; c * chunk < cur.size(); ++c) {
      std::vector<Group> complement;
      for (std::size_t i = 0; i < cur.size(); ++i) {
        if (i < c * chunk || i >= (c + 1) * chunk) complement.push_back(cur[i]);
      }
      if (complement.empty()) continue;
      if (eval(subset(plan, complement))) {
        cur = std::move(complement);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= cur.size()) break;
      granularity = std::min(cur.size(), granularity * 2);
    }
  }
  ChaosPlan best = subset(plan, cur);

  // ---- time mutations: keep each only if the failure still reproduces ----

  const auto try_mutation = [&](const ChaosPlan& candidate) {
    if (eval(candidate)) best = candidate;
  };

  // Trim the duration to the last step plus the settle tail.
  {
    TimeNs last = 0;
    for (const ChaosStep& s : best.steps) last = std::max(last, s.at);
    const TimeNs trimmed = last + cfg_.settle_tail;
    if (trimmed < best.duration) {
      ChaosPlan candidate = best;
      candidate.duration = trimmed;
      try_mutation(candidate);
    }
  }

  // Halve each outage window down to min_window.
  for (bool changed = true; changed && res.trials < cfg_.max_trials;) {
    changed = false;
    for (const auto& [bi, ei] : window_pairs(best)) {
      const TimeNs len = best.steps[ei].at - best.steps[bi].at;
      const TimeNs halved = std::max(cfg_.min_window, len / 2);
      if (halved >= len) continue;
      ChaosPlan candidate = best;
      candidate.steps[ei].at = candidate.steps[bi].at + halved;
      if (eval(candidate)) {
        best = std::move(candidate);
        changed = true;
      }
    }
  }

  // Snap every step time to a period boundary.
  {
    ChaosPlan candidate = best;
    bool any = false;
    for (ChaosStep& s : candidate.steps) {
      const TimeNs snapped = (s.at / cfg_.period) * cfg_.period;
      if (snapped != s.at) {
        s.at = snapped;
        any = true;
      }
    }
    if (any) try_mutation(candidate);
  }

  res.plan = std::move(best);
  res.steps_after = res.plan.steps.size();
  return res;
}

}  // namespace rpm::chaos
