// Baseline: classic Pingmesh-style software-timestamped probing.
//
// Pingmesh [Guo et al., SIGCOMM'15] measures RTT at the application layer
// with TCP probes. Its measured RTT is ① to ⑥ only:
//
//     software RTT = prober processing delay
//                  + network RTT
//                  + responder processing delay
//
// which means it (a) fluctuates with host CPU load (Figure 2), (b) cannot
// separate host from network bottlenecks, and (c) — riding the lossy TCP
// traffic class — cannot see RoCE-queue problems like PFC misconfiguration
// or deadlock (§2.4). This module exists so benches can show those
// limitations side by side with R-Pingmesh's hardware-timestamped probing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "host/cluster.h"

namespace rpm::pingmesh {

struct SoftwarePingConfig {
  TimeNs timeout = msec(500);
  Bytes payload = 50;
  std::uint8_t protocol = 6;  // TCP traffic class (the point of Figure 2)
  std::uint16_t src_port_base = 42000;
};

/// Result of one software probe.
struct SoftwarePingResult {
  bool ok = false;
  TimeNs software_rtt = 0;  // ⑥ - ① on the prober's host clock
};

/// Installs a responder endpoint on every RNIC and lets callers issue
/// software-timestamped probes between any RNIC pair.
class SoftwarePingmesh {
 public:
  explicit SoftwarePingmesh(host::Cluster& cluster,
                            SoftwarePingConfig cfg = {});

  /// Issue one probe; `done` fires when the reply arrives or the timeout
  /// elapses.
  void probe(RnicId src, RnicId dst,
             std::function<void(const SoftwarePingResult&)> done);

 private:
  struct Endpoint {
    Qpn qpn;
  };
  struct Pending {
    TimeNs t1_host = 0;  // ① on the prober's host clock
    std::function<void(const SoftwarePingResult&)> done;
    bool finished = false;
  };
  struct Payload {
    std::uint64_t probe_id;
    bool is_reply;
    Qpn reply_qpn;
  };

  void on_cqe(RnicId rnic, const rnic::Cqe& cqe);

  host::Cluster& cluster_;
  SoftwarePingConfig cfg_;
  std::vector<Endpoint> endpoints_;  // per rnic
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::uint64_t next_id_ = 1;
};

}  // namespace rpm::pingmesh
