#include "pingmesh/pingmesh.h"

namespace rpm::pingmesh {

SoftwarePingmesh::SoftwarePingmesh(host::Cluster& cluster,
                                   SoftwarePingConfig cfg)
    : cluster_(cluster), cfg_(cfg) {
  endpoints_.resize(cluster_.num_rnics());
  for (std::uint32_t i = 0; i < cluster_.num_rnics(); ++i) {
    const RnicId id{i};
    rnic::QpConfig qcfg;
    qcfg.type = rnic::QpType::kUD;
    qcfg.on_cqe = [this, id](const rnic::Cqe& c) { on_cqe(id, c); };
    endpoints_[i].qpn = cluster_.rnic_device(id).create_qp(qcfg);
  }
}

void SoftwarePingmesh::probe(
    RnicId src, RnicId dst,
    std::function<void(const SoftwarePingResult&)> done) {
  auto& sched = cluster_.scheduler();
  host::HostModel& prober_host = cluster_.host(cluster_.topology().rnic(src).host);

  const std::uint64_t id = next_id_++;
  Pending p;
  p.t1_host = prober_host.host_now();  // ① software timestamp
  p.done = std::move(done);
  pending_.emplace(id, std::move(p));

  // Userspace -> kernel -> NIC takes one scheduling quantum too, but
  // Pingmesh's ① is taken before the send syscall, so nothing to add here.
  rnic::RnicDevice& dev = cluster_.rnic_device(src);
  // Build the probe "TCP segment": we reuse the UD machinery but stamp the
  // TCP protocol so the fabric routes it through the lossy traffic class.
  fabric::Datagram d;
  d.src = src;
  d.dst = dst;
  d.tuple.src_ip = dev.ip();
  d.tuple.dst_ip = cluster_.topology().rnic(dst).ip;
  d.tuple.src_port =
      static_cast<std::uint16_t>(cfg_.src_port_base + (id & 0x3FF));
  d.tuple.dst_port = 80;  // Pingmesh-style server port
  d.tuple.protocol = cfg_.protocol;
  d.size = cfg_.payload;
  d.dst_qpn = endpoints_[dst.value].qpn;
  d.src_qpn = endpoints_[src.value].qpn;
  d.payload = Payload{id, false, endpoints_[src.value].qpn};
  cluster_.fabric().send(d);

  // Timeout.
  sched.schedule_after(cfg_.timeout, [this, id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;
    auto cb = std::move(it->second.done);
    pending_.erase(it);
    SoftwarePingResult r;
    r.ok = false;
    cb(r);
  });
}

void SoftwarePingmesh::on_cqe(RnicId rnic_id, const rnic::Cqe& cqe) {
  if (cqe.is_send) return;
  const auto* pl = std::any_cast<Payload>(&cqe.payload);
  if (pl == nullptr) return;
  host::HostModel& h =
      cluster_.host(cluster_.topology().rnic(rnic_id).host);
  if (h.is_down()) return;

  if (!pl->is_reply) {
    // Responder side: the reply is sent only after the server process gets
    // scheduled — that delay is invisible to the prober's math.
    const Payload reply{pl->probe_id, true, Qpn{}};
    const auto src = rnic::rnic_of_gid(cqe.src_gid);
    if (!src) return;
    const Qpn reply_qpn = pl->reply_qpn;
    const RnicId target = *src;
    cluster_.scheduler().schedule_after(
        h.sample_process_delay(), [this, rnic_id, target, reply, reply_qpn,
                                   tuple = cqe.tuple] {
          rnic::RnicDevice& dev = cluster_.rnic_device(rnic_id);
          if (dev.is_down()) return;
          fabric::Datagram d;
          d.src = rnic_id;
          d.dst = target;
          d.tuple.src_ip = dev.ip();
          d.tuple.dst_ip = tuple.src_ip;
          d.tuple.src_port = tuple.src_port;
          d.tuple.dst_port = 80;
          d.tuple.protocol = tuple.protocol;
          d.size = 50;
          d.dst_qpn = reply_qpn;
          d.payload = reply;
          cluster_.fabric().send(d);
        });
    return;
  }

  // Prober side: the probing process observes the reply only after it gets
  // scheduled; ⑥ is taken then. This is what makes software RTT track load.
  const std::uint64_t id = pl->probe_id;
  cluster_.scheduler().schedule_after(h.sample_process_delay(), [this, id,
                                                                 rnic_id] {
    auto it = pending_.find(id);
    if (it == pending_.end()) return;  // already timed out
    host::HostModel& prober_host =
        cluster_.host(cluster_.topology().rnic(rnic_id).host);
    SoftwarePingResult r;
    r.ok = true;
    r.software_rtt = prober_host.host_now() - it->second.t1_host;
    auto cb = std::move(it->second.done);
    pending_.erase(it);
    cb(r);
  });
}

}  // namespace rpm::pingmesh
