// Pipeline wall-clock stage profiler — implementation. See prof.h for the
// contract: one branch when disabled, per-thread buffers, deterministic
// (order-independent) folds, wall time never feeding sim decisions.
#include "prof/prof.h"

#include <algorithm>
#include <cstdio>

#include "obs/flight_recorder.h"
#include "sim/parallel.h"
#include "sim/scheduler.h"

namespace rpm::prof {
namespace {

constexpr const char* kStageNames[kNumStages] = {
    "sim.dispatch",   "ingest.submit", "ingest.drain_barrier",
    "drain.triage",   "drain.vote",    "drain.bottleneck",
    "drain.sla",      "drain.impact",  "drain.diaglog",
    "digest.flush",   "global.merge",  "transport.deliver",
    "sketch.flush",   "period.close",  "sim.sync_barrier",
};

/// Thread-local cache of the calling thread's buffer. Keyed by (owner,
/// generation): a new enable() invalidates every cached pointer without
/// having to visit other threads.
struct LocalSlot {
  const void* owner = nullptr;
  std::uint64_t generation = 0;
  void* buf = nullptr;
};
thread_local LocalSlot t_slot;

void append_u64(std::string& out, const char* key, std::uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
}

void append_f64(std::string& out, const char* key, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.1f", key, v);
  out += buf;
}

}  // namespace

const char* stage_name(Stage s) {
  const auto i = static_cast<std::size_t>(s);
  return i < kNumStages ? kStageNames[i] : "?";
}

void StageStats::merge(const StageStats& o) {
  if (o.count == 0) return;
  min_ns = count == 0 ? o.min_ns : std::min(min_ns, o.min_ns);
  max_ns = std::max(max_ns, o.max_ns);
  count += o.count;
  total_ns += o.total_ns;
  sketch.merge(o.sketch);
}

std::string ProfileReport::to_json() const {
  std::string out = "{\"stages\":[";
  bool first = true;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const StageStats& st = stages[i];
    if (!first) out += ',';
    first = false;
    out += "{\"stage\":\"";
    out += kStageNames[i];
    out += "\",";
    append_u64(out, "count", st.count);
    out += ',';
    append_u64(out, "total_ns", st.total_ns);
    out += ',';
    append_u64(out, "min_ns", st.min_ns);
    out += ',';
    append_u64(out, "max_ns", st.max_ns);
    out += ',';
    append_f64(out, "p50_ns", st.p50_ns());
    out += ',';
    append_f64(out, "p99_ns", st.p99_ns());
    out += '}';
  }
  out += "],";
  append_u64(out, "budget_overruns", budget_overruns);
  out += ',';
  append_u64(out, "trace_events_dropped", trace_events_dropped);
  out += '}';
  return out;
}

/// One thread's private accumulation state. `mu` is per-buffer (the owning
/// thread takes it on every record; the folding thread takes it at report
/// time), following the telemetry Histogram per-series-mutex precedent —
/// uncontended in steady state, TSan-clean at the barrier.
struct Profiler::ThreadBuf {
  struct TraceEvent {
    Stage stage;
    std::uint64_t start_ns;  // wall ns since enable()
    std::uint64_t dur_ns;
  };

  std::mutex mu;
  std::array<StageStats, kNumStages> stats;
  std::vector<TraceEvent> trace;
  std::uint64_t trace_dropped = 0;
  std::size_t index = 0;  // registration order; chrome tid
};

Profiler::Profiler() = default;
Profiler::~Profiler() = default;

void Profiler::enable(ProfilerConfig cfg) {
  disable();
  {
    std::lock_guard<std::mutex> lock(mu_);
    cfg_ = cfg;
    bufs_.clear();
    last_close_ = PeriodCloseInfo{};
    overruns_.store(0, std::memory_order_relaxed);
    epoch_ = std::chrono::steady_clock::now();
    generation_.fetch_add(1, std::memory_order_relaxed);
  }
  // Registry interaction happens outside mu_: the collector snapshots via
  // report(), which takes mu_ under the registry lock — acquiring them here
  // in the opposite order would be a lock-order inversion.
  auto& reg = telemetry::registry();
  m_overruns_ = reg.counter("rpm_prof_budget_overruns_total",
                            "Period closes that exceeded the profiler's "
                            "wall-clock budget");
  collector_ = telemetry::CollectorGuard(
      reg, [this](telemetry::MetricsRegistry& r) { export_metrics_to(r); });
  enabled_.store(true, std::memory_order_release);
}

void Profiler::disable() {
  enabled_.store(false, std::memory_order_release);
  // Buffers stay readable (report() after a run); only the collector goes,
  // so disabled-profiler metric scrapes are byte-identical to never-enabled.
  collector_ = telemetry::CollectorGuard();
}

void Profiler::record_slow(Stage s, std::uint64_t ns) {
  ThreadBuf* buf = local_buf();
  std::lock_guard<std::mutex> lock(buf->mu);
  StageStats& st = buf->stats[static_cast<std::size_t>(s)];
  st.min_ns = st.count == 0 ? ns : std::min(st.min_ns, ns);
  st.max_ns = std::max(st.max_ns, ns);
  ++st.count;
  st.total_ns += ns;
  st.sketch.add(static_cast<double>(ns));
  if (cfg_.max_trace_events > 0) {
    if (buf->trace.size() < cfg_.max_trace_events) {
      const auto now = std::chrono::steady_clock::now();
      const auto since_epoch = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
              .count());
      const std::uint64_t start =
          since_epoch > ns ? since_epoch - ns : 0;
      buf->trace.push_back({s, start, ns});
    } else {
      ++buf->trace_dropped;
    }
  }
}

Profiler::ThreadBuf* Profiler::local_buf() {
  const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
  if (t_slot.owner == this && t_slot.generation == gen &&
      t_slot.buf != nullptr) {
    return static_cast<ThreadBuf*>(t_slot.buf);
  }
  std::lock_guard<std::mutex> lock(mu_);
  bufs_.push_back(std::make_unique<ThreadBuf>());
  ThreadBuf* buf = bufs_.back().get();
  buf->index = bufs_.size() - 1;
  t_slot = {this, gen, buf};
  return buf;
}

ProfileReport Profiler::report() const {
  ProfileReport rep;
  std::lock_guard<std::mutex> lock(mu_);
  rep.budget_overruns = overruns_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<ThreadBuf>& buf : bufs_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    for (std::size_t i = 0; i < kNumStages; ++i) {
      rep.stages[i].merge(buf->stats[i]);
    }
    rep.trace_events_dropped += buf->trace_dropped;
  }
  return rep;
}

std::string Profiler::chrome_events() const {
  std::string out;
  char buf[96];
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<ThreadBuf>& tb : bufs_) {
    std::lock_guard<std::mutex> buf_lock(tb->mu);
    for (const ThreadBuf::TraceEvent& e : tb->trace) {
      if (!out.empty()) out += ',';
      out += "{\"name\":\"";
      out += stage_name(e.stage);
      // pid 3 keeps the wall-clock stage tracks separate from the telemetry
      // tracer (pid 1, sim time) and the flight recorder (pid 2).
      out += "\",\"cat\":\"prof\",\"ph\":\"X\",\"pid\":3,\"tid\":" +
             std::to_string(tb->index);
      std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f}",
                    static_cast<double>(e.start_ns) / 1e3,
                    std::max(static_cast<double>(e.dur_ns) / 1e3, 0.001));
      out += buf;
    }
  }
  return out;
}

void Profiler::fold_totals(
    std::array<std::uint64_t, kNumStages>& totals) const {
  totals.fill(0);
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<ThreadBuf>& buf : bufs_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    for (std::size_t i = 0; i < kNumStages; ++i) {
      totals[i] += buf->stats[i].total_ns;
    }
  }
}

void Profiler::note_period_close(
    std::uint64_t wall_ns,
    const std::array<std::uint64_t, kNumStages>& before) {
  std::array<std::uint64_t, kNumStages> after{};
  fold_totals(after);
  // Top-cost stage of *this* close = largest per-stage delta; the close's
  // own kPeriodClose sample is excluded (it spans everything). Ties break
  // toward the lowest stage index — deterministic.
  std::size_t top = static_cast<std::size_t>(Stage::kPeriodClose);
  std::uint64_t top_delta = 0;
  for (std::size_t i = 0; i < kNumStages; ++i) {
    if (i == static_cast<std::size_t>(Stage::kPeriodClose)) continue;
    const std::uint64_t delta = after[i] - before[i];
    if (delta > top_delta) {
      top_delta = delta;
      top = i;
    }
  }
  const bool overrun =
      cfg_.period_close_budget > 0 &&
      wall_ns > static_cast<std::uint64_t>(cfg_.period_close_budget);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++last_close_.seq;
    last_close_.wall_ns = wall_ns;
    last_close_.top_stage = static_cast<Stage>(top);
    last_close_.overrun = overrun;
  }
  obs::recorder().marker(obs::ProbeEventKind::kPeriodClose, wall_ns, top);
  if (overrun) {
    overruns_.fetch_add(1, std::memory_order_relaxed);
    m_overruns_.inc();
    obs::recorder().marker(obs::ProbeEventKind::kBudgetOverrun, wall_ns, top);
  }
}

void Profiler::export_metrics_to(telemetry::MetricsRegistry& reg) {
  const ProfileReport rep = report();
  for (std::size_t i = 0; i < kNumStages; ++i) {
    const StageStats& st = rep.stages[i];
    if (st.count == 0) continue;
    const telemetry::Labels labels = {{"stage", kStageNames[i]}};
    reg.counter("rpm_prof_stage_count", "Samples folded per pipeline stage",
                labels)
        .set(st.count);
    reg.counter("rpm_prof_stage_total_ns",
                "Cumulative wall nanoseconds per pipeline stage", labels)
        .set(st.total_ns);
    reg.gauge("rpm_prof_stage_min_ns",
              "Fastest sample per pipeline stage, wall ns", labels)
        .set(static_cast<double>(st.min_ns));
    reg.gauge("rpm_prof_stage_max_ns",
              "Slowest sample per pipeline stage, wall ns", labels)
        .set(static_cast<double>(st.max_ns));
    reg.gauge("rpm_prof_stage_p50_ns",
              "Median sample per pipeline stage, wall ns", labels)
        .set(st.p50_ns());
    reg.gauge("rpm_prof_stage_p99_ns",
              "p99 sample per pipeline stage, wall ns", labels)
        .set(st.p99_ns());
  }
}

PeriodCloseInfo Profiler::last_period_close() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_close_;
}

std::size_t Profiler::num_thread_buffers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bufs_.size();
}

void Profiler::attach_scheduler(sim::Scheduler& sched) {
  sched.set_dispatch_observer(
      [this](std::uint32_t /*partition*/, std::uint64_t wall_ns) {
        record(Stage::kSimDispatch, wall_ns);
      });
}

void Profiler::attach_scheduler(sim::ParallelScheduler& sched) {
  attach_scheduler(static_cast<sim::Scheduler&>(sched));
  // Dispatch samples land in per-worker thread buffers (per-partition wall
  // accounting falls out of the fold); the barrier merge is its own stage.
  sched.set_barrier_observer([this](std::uint64_t wall_ns) {
    record(Stage::kSimSyncBarrier, wall_ns);
  });
}

void Profiler::detach_scheduler(sim::Scheduler& sched) {
  sched.set_dispatch_observer(nullptr);
}

void Profiler::detach_scheduler(sim::ParallelScheduler& sched) {
  sched.set_dispatch_observer(nullptr);
  sched.set_barrier_observer(nullptr);
}

Profiler& profiler() {
  static Profiler p;
  return p;
}

PeriodCloseScope::PeriodCloseScope() {
  Profiler& p = profiler();
  if (!p.enabled()) return;
  prof_ = &p;
  p.fold_totals(totals0_);
  t0_ = std::chrono::steady_clock::now();
}

PeriodCloseScope::~PeriodCloseScope() {
  if (prof_ == nullptr) return;
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0_)
                      .count();
  const auto wall = static_cast<std::uint64_t>(ns);
  prof_->record(Stage::kPeriodClose, wall);
  if (prof_->enabled()) prof_->note_period_close(wall, totals0_);
}

}  // namespace rpm::prof
