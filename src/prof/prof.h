// Pipeline wall-clock stage profiler.
//
// Sim-time metrics and the flight recorder explain *causality*; neither says
// where wall-clock time actually goes between submit and verdict. This
// module does: a fixed enum of pipeline stages (event dispatch, ingest
// submit/drain, the analyze_period sub-stages, digest flush, global merge,
// transport delivery, sketch flush), each measured with std::chrono::
// steady_clock by a RAII `StageScope`, accumulated in per-thread buffers —
// ingest workers record without touching anyone else's state — and folded on
// demand into per-stage count/total/min/max plus a mergeable
// `sketch::QuantileSketch` for p50/p99.
//
// Design constraints (shared with the tracer and flight recorder):
//  * Always compiled, one branch when disabled: StageScope's constructor is
//    a single relaxed atomic load when the profiler is off — no allocation,
//    no clock read (tests/test_prof pins this).
//  * Wall time NEVER feeds simulation decisions. The profiler only observes;
//    profiler on vs off produces byte-identical verdicts/SLA/ChaosReport
//    output (tests/test_prof pins this too).
//  * Deterministic folds: count/total/min/max are order-independent integer
//    reductions and QuantileSketch::merge is commutative + associative, so
//    the folded report does not depend on thread registration order.
//
// Outputs: `rpm_prof_stage_*{stage}` metrics (registry collector, installed
// while enabled), `ProfileReport::to_json()` dumps, and `chrome_events()` —
// per-thread chrome://tracing tracks (pid 3, wall-clock timeline) spliced
// into the existing tracer via telemetry::Tracer::chrome_json(extra).
//
// The period-close watchdog: `PeriodCloseScope` wraps one Analyzer period
// close (drain -> verdict -> checkpoint) or GlobalAnalyzer merge. When the
// close exceeds `ProfilerConfig::period_close_budget`, it bumps
// `rpm_prof_budget_overruns_total` and emits a kBudgetOverrun flight-
// recorder marker naming the top-cost stage of that close.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "sketch/sketch.h"
#include "telemetry/metrics.h"

namespace rpm::sim {
class Scheduler;
class ParallelScheduler;
}  // namespace rpm::sim

namespace rpm::prof {

/// The fixed stage set. Stages nest naturally (everything below
/// kSimDispatch runs inside a dispatched event; the drain.* stages run
/// inside period.close), so totals overlap by design — this is a
/// hierarchical profile, not a partition.
enum class Stage : std::uint8_t {
  kSimDispatch = 0,     // one Scheduler callback execution
  kIngestSubmit,        // IngestSink submit + (pool) worker-side processing
  kIngestDrainBarrier,  // WorkerPoolSink barrier at period close
  kDrainTriage,         // analyze_period: classify + rnic_detect + attribute
  kDrainVote,           // analyze_period: Algorithm-1 localization
  kDrainBottleneck,     // analyze_period: bottleneck scan
  kDrainSla,            // analyze_period: SLA percentile tables
  kDrainImpact,         // analyze_period: P0/P1/P2 impact assessment
  kDrainDiaglog,        // period-end history/diagnosis/journal bookkeeping
  kDigestFlush,         // PodAnalyzer built + sent one PodDigest
  kGlobalMerge,         // GlobalAnalyzer merged the pending digests
  kTransportDeliver,    // one Channel handler invocation
  kSketchFlush,         // SketchExporter flushed a period's link sketches
  kPeriodClose,         // whole Analyzer close: drain -> verdict -> checkpoint
  kSimSyncBarrier,      // ParallelScheduler cross-partition merge per window
};
inline constexpr std::size_t kNumStages = 15;

/// Dotted display name, e.g. "sim.dispatch", "drain.vote".
const char* stage_name(Stage s);

/// Folded statistics for one stage.
struct StageStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t min_ns = 0;  // 0 when count == 0
  std::uint64_t max_ns = 0;
  sketch::QuantileSketch sketch;  // per-sample duration, ns

  [[nodiscard]] double p50_ns() const { return sketch.quantile(0.5); }
  [[nodiscard]] double p99_ns() const { return sketch.quantile(0.99); }
  void merge(const StageStats& o);
};

/// One deterministic fold of every thread buffer.
struct ProfileReport {
  std::array<StageStats, kNumStages> stages;
  std::uint64_t budget_overruns = 0;
  std::uint64_t trace_events_dropped = 0;

  [[nodiscard]] const StageStats& stage(Stage s) const {
    return stages[static_cast<std::size_t>(s)];
  }
  /// {"stages":[{"stage":...,"count":...,"total_ns":...,"min_ns":...,
  ///  "max_ns":...,"p50_ns":...,"p99_ns":...},...],
  ///  "budget_overruns":N,"trace_events_dropped":N}
  [[nodiscard]] std::string to_json() const;
};

struct ProfilerConfig {
  /// Wall budget for one period close; 0 disables the watchdog.
  TimeNs period_close_budget = 0;
  /// Per-thread cap on buffered chrome://tracing events (0 = no tracks;
  /// stage statistics are always collected). Overflow is counted, not kept.
  std::size_t max_trace_events = 4096;
};

/// Most recent period close observed by a PeriodCloseScope.
struct PeriodCloseInfo {
  std::uint64_t seq = 0;  // closes observed since enable(); 0 = none yet
  std::uint64_t wall_ns = 0;
  Stage top_stage = Stage::kPeriodClose;  // largest per-stage delta
  bool overrun = false;
};

class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Turn profiling on. Re-enabling resets all buffers, the overrun counter,
  /// and the trace epoch, and (re-)installs the metrics collector.
  void enable(ProfilerConfig cfg = {});
  void disable();
  /// Acquire pairs with enable()'s release store so a recording thread that
  /// observes `true` also observes the freshly reset epoch/config (free on
  /// x86; a plain load-acquire on ARM).
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const ProfilerConfig& config() const { return cfg_; }

  /// Fold a measured duration into the calling thread's buffer. One branch
  /// when disabled. Used directly by callers that already hold a duration
  /// (scheduler dispatch hook, analyze_period's stage transitions);
  /// everything else uses StageScope.
  void record(Stage s, std::uint64_t ns) {
    if (!enabled()) return;
    record_slow(s, ns);
  }

  /// Install a dispatch observer on `sched` that folds every executed
  /// event's wall cost into sim.dispatch. The observer stays installed (and
  /// keeps paying two clock reads per event) until detach_scheduler; it
  /// records nothing while the profiler is disabled. In a partitioned run
  /// each worker thread records into its own buffer, so per-partition
  /// dispatch cost folds deterministically; the ParallelScheduler overload
  /// additionally hooks the per-window inbox merge as sim.sync_barrier.
  void attach_scheduler(sim::Scheduler& sched);
  void attach_scheduler(sim::ParallelScheduler& sched);
  static void detach_scheduler(sim::Scheduler& sched);
  static void detach_scheduler(sim::ParallelScheduler& sched);

  /// Deterministic fold of every thread buffer (order-independent).
  /// Readable while enabled and after disable().
  [[nodiscard]] ProfileReport report() const;

  /// Comma-joined chrome://tracing 'X' events — one track per recording
  /// thread (pid 3, tid = registration index), ts = wall microseconds since
  /// enable(). Feed to telemetry::Tracer::chrome_json(extra_events).
  [[nodiscard]] std::string chrome_events() const;

  [[nodiscard]] std::uint64_t budget_overruns() const {
    return overruns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] PeriodCloseInfo last_period_close() const;
  [[nodiscard]] std::size_t num_thread_buffers() const;

 private:
  friend class PeriodCloseScope;
  struct ThreadBuf;

  void record_slow(Stage s, std::uint64_t ns);
  ThreadBuf* local_buf();
  /// count/total only (cheap), for per-close deltas.
  void fold_totals(std::array<std::uint64_t, kNumStages>& totals) const;
  void note_period_close(std::uint64_t wall_ns,
                         const std::array<std::uint64_t, kNumStages>& before);
  void export_metrics_to(telemetry::MetricsRegistry& reg);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{0};  // bumped per enable()
  std::atomic<std::uint64_t> overruns_{0};
  ProfilerConfig cfg_;
  std::chrono::steady_clock::time_point epoch_{};  // enable() time

  mutable std::mutex mu_;  // guards bufs_ vector + last_close_ + collector
  std::vector<std::unique_ptr<ThreadBuf>> bufs_;
  PeriodCloseInfo last_close_;
  telemetry::Counter m_overruns_;
  telemetry::CollectorGuard collector_;
};

/// The process-wide profiler every built-in instrumentation point uses —
/// mirrors telemetry::tracer() and obs::recorder().
Profiler& profiler();

/// RAII stage measurement. Constructor cost when the profiler is disabled:
/// one relaxed atomic load and a branch — no allocation, no clock read.
class StageScope {
 public:
  explicit StageScope(Stage s) {
    Profiler& p = profiler();
    if (!p.enabled()) return;
    prof_ = &p;
    stage_ = s;
    t0_ = std::chrono::steady_clock::now();
  }
  ~StageScope() {
    if (prof_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0_)
                        .count();
    prof_->record(stage_, static_cast<std::uint64_t>(ns));
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  Profiler* prof_ = nullptr;
  Stage stage_{};
  std::chrono::steady_clock::time_point t0_{};
};

/// RAII watchdog around one period close (Analyzer::analyze_now,
/// GlobalAnalyzer::merge_now). Records the close's wall cost as
/// Stage::kPeriodClose; on destruction it diffs per-stage totals to name
/// the top-cost stage of this close, emits a kPeriodClose flight-recorder
/// marker, and — when the configured budget is exceeded — bumps
/// rpm_prof_budget_overruns_total and emits a kBudgetOverrun marker.
class PeriodCloseScope {
 public:
  PeriodCloseScope();
  ~PeriodCloseScope();
  PeriodCloseScope(const PeriodCloseScope&) = delete;
  PeriodCloseScope& operator=(const PeriodCloseScope&) = delete;

 private:
  Profiler* prof_ = nullptr;
  std::chrono::steady_clock::time_point t0_{};
  std::array<std::uint64_t, kNumStages> totals0_{};
};

}  // namespace rpm::prof
