// Lightweight trace spans rendered as chrome://tracing ("Trace Event
// Format") JSON, keyed to *simulated* time.
//
// Two span flavours:
//
//  * Nested spans — begin_span()/end_span() or the RAII ScopedSpan — model a
//    call stack (e.g. the Analyzer's per-stage pipeline). They emit complete
//    ("X") events whose `tid` is the nesting depth. Because a whole Analyzer
//    period executes at one simulated instant, a nested span also records
//    its *wall-clock* cost in `dur` (chrome shows where real CPU time went,
//    positioned at the simulated moment it happened).
//
//  * Async spans — async_begin()/async_end() keyed by (name, id) — model
//    overlapping intervals like probe round-trips or fault-injection
//    episodes. They emit "b"/"e" events and their duration is simulated
//    time, which is what a probe's flight time means.
//
// The tracer is disabled by default; every record call is a single branch
// when off, so instrumentation can stay compiled into hot paths. The event
// buffer is bounded (drops are counted) so a forgotten tracer cannot eat
// the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.h"

namespace rpm::telemetry {

class Tracer {
 public:
  /// Returns current simulated (or otherwise monotonic) time.
  using ClockFn = std::function<TimeNs()>;

  /// Enable recording. Without a clock, spans are stamped with an internal
  /// monotonic wall clock (ns since first use).
  void enable(ClockFn clock = {});
  void disable();
  [[nodiscard]] bool enabled() const { return enabled_; }

  // ---- nested (stack) spans ----

  /// Opens a span; returns a token for end_span. Token 0 = not recording.
  std::uint64_t begin_span(std::string name, std::string category);
  void end_span(std::uint64_t token);

  // ---- async (overlapping) spans ----

  void async_begin(std::string name, std::string category, std::uint64_t id);
  void async_end(std::string name, std::string category, std::uint64_t id);

  /// Zero-duration marker (fault injected, Agent restarted, ...).
  void instant(std::string name, std::string category);

  // ---- output ----

  /// {"traceEvents":[...],"displayTimeUnit":"ms"} — loadable by
  /// chrome://tracing and Perfetto.
  [[nodiscard]] std::string chrome_json() const;

  /// Same, with `extra_events` — comma-joined event objects produced
  /// elsewhere (e.g. obs::FlightRecorder::chrome_events() per-probe tracks)
  /// — appended inside the traceEvents array.
  [[nodiscard]] std::string chrome_json(const std::string& extra_events)
      const;

  void clear();
  [[nodiscard]] std::size_t num_events() const { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped_events() const { return dropped_; }

  /// Cap on buffered events (default 1M); beyond it events are counted as
  /// dropped instead of stored.
  void set_max_events(std::size_t n) { max_events_ = n; }

 private:
  struct Event {
    char ph;  // 'X' complete, 'b'/'e' async, 'i' instant
    std::string name;
    std::string category;
    TimeNs ts;
    TimeNs dur;        // X only (wall ns)
    std::uint64_t id;  // async only
    int tid;
  };
  struct OpenSpan {
    std::uint64_t token;
    std::string name;
    std::string category;
    TimeNs ts;
    std::int64_t wall_begin_ns;
    int depth;
  };

  [[nodiscard]] TimeNs now() const;
  void push(Event e);

  bool enabled_ = false;
  ClockFn clock_;
  std::vector<Event> events_;
  std::vector<OpenSpan> stack_;
  std::uint64_t next_token_ = 1;
  std::uint64_t dropped_ = 0;
  std::size_t max_events_ = 1 << 20;
};

/// The process-wide default tracer used by built-in instrumentation.
Tracer& tracer();

/// RAII nested span on the default (or a given) tracer.
class ScopedSpan {
 public:
  ScopedSpan(std::string name, std::string category,
             Tracer& t = telemetry::tracer())
      : tracer_(&t),
        token_(t.begin_span(std::move(name), std::move(category))) {}
  ~ScopedSpan() { tracer_->end_span(token_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  std::uint64_t token_;
};

}  // namespace rpm::telemetry
