// Exporters for MetricsRegistry snapshots: Prometheus text exposition
// format and a JSON document, plus a PeriodicTask-driven dumper that
// snapshots the registry on the simulation clock (the sim-world stand-in
// for a scrape loop).
//
// Both renderings are deterministic for a deterministic snapshot: families
// sorted by name, series by canonical label key, no timestamps, fixed float
// formatting. That is what makes golden-file tests of a fixed-seed run
// possible.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "sim/scheduler.h"
#include "telemetry/metrics.h"

namespace rpm::telemetry {

/// Prometheus text exposition format. Counters/gauges render one line per
/// series; histograms render as summaries (quantile series + _sum + _count).
std::string to_prometheus(const Snapshot& snap);

/// JSON: {"metrics":[{"name":...,"type":...,"labels":{...},...}, ...]}.
std::string to_json(const Snapshot& snap);

enum class ExportFormat { kPrometheus, kJson };

/// Periodically snapshots a registry on the simulated clock and hands the
/// rendered text to a sink (stdout, a file, a test buffer). This is the
/// simulated equivalent of a Prometheus scrape: examples hook it into the
/// cluster's EventScheduler next to the Analyzer's 20 s loop.
class PeriodicDumper {
 public:
  using Sink = std::function<void(const std::string&)>;

  PeriodicDumper(sim::Scheduler& sched, TimeNs period, Sink sink,
                 ExportFormat format = ExportFormat::kPrometheus,
                 MetricsRegistry* reg = &registry());
  ~PeriodicDumper();

  void start(TimeNs first_delay = 0);
  void stop();
  [[nodiscard]] bool running() const;

  /// Snapshot + render + sink immediately (also what the periodic task runs).
  void dump_now();

  [[nodiscard]] std::uint64_t dumps() const { return dumps_; }

 private:
  MetricsRegistry* reg_;
  Sink sink_;
  ExportFormat format_;
  std::uint64_t dumps_ = 0;
  sim::PeriodicTask task_;
};

}  // namespace rpm::telemetry
