#include "telemetry/export.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace rpm::telemetry {

namespace {

// Fixed-format double rendering: integral values print without a fraction
// ("42"), everything else as shortest-ish %.9g. Deterministic across runs
// given identical doubles.
std::string fmt_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

// Prometheus exposition format: inside a label value, backslash, double
// quote, and newline MUST be escaped (\\, \", \n) or the scrape breaks.
std::string prom_escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

// HELP text escaping: backslash and newline only (quotes are legal there).
std::string prom_escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string prometheus_labels(const Labels& labels, const char* extra_key,
                              const char* extra_value) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ',';
    first = false;
    out += l.key;
    out += "=\"";
    out += prom_escape_label(l.value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_prometheus(const Snapshot& snap) {
  std::string out;
  // # HELP / # TYPE exactly once per family, even if the snapshot ever
  // interleaves families (the usual sorted order makes the set a no-op).
  std::unordered_set<std::string> emitted_families;
  for (const SeriesSample& s : snap.series) {
    if (emitted_families.insert(s.name).second) {
      if (!s.help.empty()) {
        out += "# HELP " + s.name + ' ' + prom_escape_help(s.help) + '\n';
      }
      out += "# TYPE " + s.name + ' ';
      out += s.type == MetricType::kHistogram ? "summary"
                                              : metric_type_name(s.type);
      out += '\n';
    }
    switch (s.type) {
      case MetricType::kCounter:
        out += s.name + prometheus_labels(s.labels, nullptr, nullptr) + ' ' +
               std::to_string(s.counter_value) + '\n';
        break;
      case MetricType::kGauge:
        out += s.name + prometheus_labels(s.labels, nullptr, nullptr) + ' ' +
               fmt_double(s.gauge_value) + '\n';
        break;
      case MetricType::kHistogram: {
        static constexpr std::pair<const char*, double SeriesSample::*>
            kQuantiles[] = {{"0.5", &SeriesSample::hist_p50},
                            {"0.9", &SeriesSample::hist_p90},
                            {"0.99", &SeriesSample::hist_p99},
                            {"0.999", &SeriesSample::hist_p999}};
        for (const auto& [q, member] : kQuantiles) {
          out += s.name + prometheus_labels(s.labels, "quantile", q) + ' ' +
                 fmt_double(s.*member) + '\n';
        }
        out += s.name + "_sum" + prometheus_labels(s.labels, nullptr, nullptr) +
               ' ' + fmt_double(s.hist_sum) + '\n';
        out += s.name + "_count" +
               prometheus_labels(s.labels, nullptr, nullptr) + ' ' +
               std::to_string(s.hist_count) + '\n';
        break;
      }
    }
  }
  return out;
}

std::string to_json(const Snapshot& snap) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const SeriesSample& s : snap.series) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + json_escape(s.name) + "\",\"type\":\"";
    out += metric_type_name(s.type);
    out += "\",\"labels\":{";
    bool lfirst = true;
    for (const Label& l : s.labels) {
      if (!lfirst) out += ',';
      lfirst = false;
      out += '"' + json_escape(l.key) + "\":\"" + json_escape(l.value) + '"';
    }
    out += '}';
    switch (s.type) {
      case MetricType::kCounter:
        out += ",\"value\":" + std::to_string(s.counter_value);
        break;
      case MetricType::kGauge:
        out += ",\"value\":" + fmt_double(s.gauge_value);
        break;
      case MetricType::kHistogram:
        out += ",\"count\":" + std::to_string(s.hist_count) +
               ",\"sum\":" + fmt_double(s.hist_sum) +
               ",\"p50\":" + fmt_double(s.hist_p50) +
               ",\"p90\":" + fmt_double(s.hist_p90) +
               ",\"p99\":" + fmt_double(s.hist_p99) +
               ",\"p999\":" + fmt_double(s.hist_p999);
        break;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

PeriodicDumper::PeriodicDumper(sim::Scheduler& sched, TimeNs period,
                               Sink sink, ExportFormat format,
                               MetricsRegistry* reg)
    : reg_(reg),
      sink_(std::move(sink)),
      format_(format),
      task_(sched, period, [this] { dump_now(); }) {
  if (!sink_) throw std::invalid_argument("PeriodicDumper: sink required");
}

PeriodicDumper::~PeriodicDumper() { stop(); }

void PeriodicDumper::start(TimeNs first_delay) { task_.start(first_delay); }

void PeriodicDumper::stop() {
  if (task_.running()) task_.cancel();
}

bool PeriodicDumper::running() const { return task_.running(); }

void PeriodicDumper::dump_now() {
  ++dumps_;
  const Snapshot snap = reg_->snapshot();
  sink_(format_ == ExportFormat::kPrometheus ? to_prometheus(snap)
                                             : to_json(snap));
}

}  // namespace rpm::telemetry
