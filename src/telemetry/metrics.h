// Self-observability: a process-wide metrics registry.
//
// R-Pingmesh monitors the network; this module lets it monitor *itself*
// (Agent probe rates, Analyzer pipeline cost, fabric queue state, event-loop
// throughput). Design goals, in order:
//
//  1. Cheap hot path. A Counter/Gauge/Histogram is a handle (one pointer)
//     into registry-owned storage; `inc()` is a single relaxed atomic add.
//     Handles are created once (construction time) and cached by the
//     instrumented component — never looked up per event.
//  2. Labeled series. A metric family (name + help + type) owns one series
//     per distinct label set, e.g. rpm_agent_probes_sent_total{host="3",
//     kind="tormesh"}. Registration deduplicates: asking again for the same
//     (name, labels) returns a handle to the same cell.
//  3. Deterministic snapshots. `snapshot()` yields families and series in
//     sorted order with no wall-clock timestamps, so exports of a
//     fixed-seed simulation are byte-identical (golden-file testable).
//
// Components that own state too large or too volatile to mirror eagerly
// (per-link queues, scheduler depth) register a *collector*: a callback run
// at snapshot time that sets gauges / mirrors counters. CollectorGuard
// unregisters on destruction so short-lived components (test fixtures,
// benches) leave no dangling callbacks behind.
//
// Thread-safety: registration, collectors, and snapshots take a mutex;
// Counter::inc / Gauge::set are lock-free atomics. Histogram::observe (and
// its readers: count/sum/percentile, snapshots) is guarded by a per-series
// mutex, so concurrent observers — e.g. the Analyzer's ingest worker pool —
// are safe; the lock is uncontended (~ns) in single-threaded use.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace rpm::telemetry {

enum class MetricType { kCounter, kGauge, kHistogram };

const char* metric_type_name(MetricType t);

/// One label, e.g. {"host", "3"}. Label sets are sorted by key on
/// registration so {"a=1","b=2"} and {"b=2","a=1"} name the same series.
struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

namespace detail {

struct HistogramCell {
  explicit HistogramCell(double min_value, double max_value)
      : hist(min_value, max_value) {}
  // Guards hist + sum: LogHistogram itself stays lock-free-unaware (it is
  // also used un-shared in hot per-component state); sharing happens only
  // through this cell.
  mutable std::mutex mu;
  LogHistogram hist;
  double sum = 0.0;
};

struct SeriesCell {
  Labels labels;
  std::string label_key;  // canonical "k=v,k=v" form (sort + export key)
  std::atomic<std::uint64_t> counter{0};
  std::atomic<double> gauge{0.0};
  std::unique_ptr<HistogramCell> histogram;
};

}  // namespace detail

/// Monotonic event count. `set()` exists only for collectors mirroring an
/// externally maintained monotonic counter (e.g. LinkState::drops_corrupt).
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const {
    if (cell_) cell_->counter.fetch_add(n, std::memory_order_relaxed);
  }
  void set(std::uint64_t v) const {
    if (cell_) cell_->counter.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return cell_ ? cell_->counter.load(std::memory_order_relaxed) : 0;
  }
  [[nodiscard]] bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::SeriesCell* c) : cell_(c) {}
  detail::SeriesCell* cell_ = nullptr;
};

/// Point-in-time value (queue depth, pending events, ...).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const {
    if (cell_) cell_->gauge.store(v, std::memory_order_relaxed);
  }
  void add(double d) const {
    if (cell_) cell_->gauge.fetch_add(d, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return cell_ ? cell_->gauge.load(std::memory_order_relaxed) : 0.0;
  }
  [[nodiscard]] bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::SeriesCell* c) : cell_(c) {}
  detail::SeriesCell* cell_ = nullptr;
};

/// Distribution backed by LogHistogram (log-bucketed, ~4 % resolution,
/// bounded memory regardless of sample count).
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const {
    if (!cell_ || !cell_->histogram) return;
    std::lock_guard<std::mutex> lock(cell_->histogram->mu);
    cell_->histogram->hist.add(v);
    cell_->histogram->sum += v;
  }
  [[nodiscard]] std::uint64_t count() const {
    if (!cell_ || !cell_->histogram) return 0;
    std::lock_guard<std::mutex> lock(cell_->histogram->mu);
    return cell_->histogram->hist.count();
  }
  [[nodiscard]] double sum() const {
    if (!cell_ || !cell_->histogram) return 0.0;
    std::lock_guard<std::mutex> lock(cell_->histogram->mu);
    return cell_->histogram->sum;
  }
  [[nodiscard]] double percentile(double q) const {
    if (!cell_ || !cell_->histogram) return 0.0;
    std::lock_guard<std::mutex> lock(cell_->histogram->mu);
    return cell_->histogram->hist.percentile(q);
  }
  [[nodiscard]] bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::SeriesCell* c) : cell_(c) {}
  detail::SeriesCell* cell_ = nullptr;
};

/// Value-copy of one series at snapshot time.
struct SeriesSample {
  std::string name;
  Labels labels;
  std::string label_key;
  MetricType type = MetricType::kCounter;
  std::string help;
  std::uint64_t counter_value = 0;
  double gauge_value = 0.0;
  // histogram only:
  std::uint64_t hist_count = 0;
  double hist_sum = 0.0;
  double hist_p50 = 0.0;
  double hist_p90 = 0.0;
  double hist_p99 = 0.0;
  double hist_p999 = 0.0;
};

/// Deterministically ordered copy of every series (families sorted by name,
/// series sorted by canonical label key).
struct Snapshot {
  std::vector<SeriesSample> series;

  /// Exact-match lookup (labels need not be pre-sorted). nullptr if absent.
  [[nodiscard]] const SeriesSample* find(const std::string& name,
                                         const Labels& labels = {}) const;

  /// Sum of counter/gauge values over every series of `name` whose label set
  /// contains all of `subset` (e.g. sum over `kind` for one `host`).
  [[nodiscard]] double sum(const std::string& name,
                           const Labels& subset = {}) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create. Throws std::invalid_argument on an empty name or when
  /// `name` is already registered with a different metric type.
  Counter counter(const std::string& name, const std::string& help,
                  Labels labels = {});
  Gauge gauge(const std::string& name, const std::string& help,
              Labels labels = {});
  Histogram histogram(const std::string& name, const std::string& help,
                      Labels labels = {}, double min_value = 1.0,
                      double max_value = 1e12);

  /// Collector callback, run (in registration order) at the start of every
  /// snapshot. It may create series and set values on `*this`.
  using CollectorFn = std::function<void(MetricsRegistry&)>;
  int add_collector(CollectorFn fn);
  void remove_collector(int id);

  [[nodiscard]] Snapshot snapshot();

  [[nodiscard]] std::size_t num_series() const;
  [[nodiscard]] std::size_t num_collectors() const;

  /// Drop every family, series, and collector (test isolation).
  void reset();

 private:
  struct Family {
    MetricType type;
    std::string help;
    double hist_min = 1.0;
    double hist_max = 1e12;
    // key: canonical label string. unique_ptr keeps cell addresses stable.
    std::map<std::string, std::unique_ptr<detail::SeriesCell>> series;
  };

  detail::SeriesCell* get_or_create(const std::string& name,
                                    const std::string& help, Labels labels,
                                    MetricType type, double hist_min,
                                    double hist_max);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
  std::vector<std::pair<int, CollectorFn>> collectors_;
  int next_collector_id_ = 1;
};

/// The process-wide default registry every built-in instrumentation point
/// uses. Tests wanting isolation construct their own MetricsRegistry or call
/// registry().reset().
MetricsRegistry& registry();

/// RAII collector registration; unregisters on destruction so components
/// with shorter lifetimes than the registry cannot leave dangling callbacks.
class CollectorGuard {
 public:
  CollectorGuard() = default;
  CollectorGuard(MetricsRegistry& reg, MetricsRegistry::CollectorFn fn)
      : reg_(&reg), id_(reg.add_collector(std::move(fn))) {}
  ~CollectorGuard() { release(); }
  CollectorGuard(CollectorGuard&& o) noexcept : reg_(o.reg_), id_(o.id_) {
    o.reg_ = nullptr;
    o.id_ = 0;
  }
  CollectorGuard& operator=(CollectorGuard&& o) noexcept {
    if (this != &o) {
      release();
      reg_ = o.reg_;
      id_ = o.id_;
      o.reg_ = nullptr;
      o.id_ = 0;
    }
    return *this;
  }
  CollectorGuard(const CollectorGuard&) = delete;
  CollectorGuard& operator=(const CollectorGuard&) = delete;

 private:
  void release() {
    if (reg_ != nullptr && id_ != 0) reg_->remove_collector(id_);
    reg_ = nullptr;
    id_ = 0;
  }
  MetricsRegistry* reg_ = nullptr;
  int id_ = 0;
};

}  // namespace rpm::telemetry
