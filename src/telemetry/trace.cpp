#include "telemetry/trace.h"

#include <chrono>
#include <cstdio>

namespace rpm::telemetry {

namespace {

std::int64_t wall_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

}  // namespace

void Tracer::enable(ClockFn clock) {
  clock_ = std::move(clock);
  enabled_ = true;
}

void Tracer::disable() {
  enabled_ = false;
  clock_ = {};
  stack_.clear();
}

TimeNs Tracer::now() const { return clock_ ? clock_() : wall_ns(); }

void Tracer::push(Event e) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

std::uint64_t Tracer::begin_span(std::string name, std::string category) {
  if (!enabled_) return 0;
  OpenSpan s;
  s.token = next_token_++;
  s.name = std::move(name);
  s.category = std::move(category);
  s.ts = now();
  s.wall_begin_ns = wall_ns();
  s.depth = static_cast<int>(stack_.size());
  stack_.push_back(std::move(s));
  return stack_.back().token;
}

void Tracer::end_span(std::uint64_t token) {
  if (token == 0 || stack_.empty()) return;
  // Pop (and emit) until the matching span is closed; deeper spans whose
  // end_span was skipped (early return, exception) are closed here too.
  while (!stack_.empty()) {
    OpenSpan s = std::move(stack_.back());
    stack_.pop_back();
    Event e;
    e.ph = 'X';
    e.name = std::move(s.name);
    e.category = std::move(s.category);
    e.ts = s.ts;
    e.dur = wall_ns() - s.wall_begin_ns;
    e.id = 0;
    e.tid = s.depth;
    push(std::move(e));
    if (s.token == token) break;
  }
}

void Tracer::async_begin(std::string name, std::string category,
                         std::uint64_t id) {
  if (!enabled_) return;
  Event e;
  e.ph = 'b';
  e.name = std::move(name);
  e.category = std::move(category);
  e.ts = now();
  e.dur = 0;
  e.id = id;
  e.tid = 0;
  push(std::move(e));
}

void Tracer::async_end(std::string name, std::string category,
                       std::uint64_t id) {
  if (!enabled_) return;
  Event e;
  e.ph = 'e';
  e.name = std::move(name);
  e.category = std::move(category);
  e.ts = now();
  e.dur = 0;
  e.id = id;
  e.tid = 0;
  push(std::move(e));
}

void Tracer::instant(std::string name, std::string category) {
  if (!enabled_) return;
  Event e;
  e.ph = 'i';
  e.name = std::move(name);
  e.category = std::move(category);
  e.ts = now();
  e.dur = 0;
  e.id = 0;
  e.tid = 0;
  push(std::move(e));
}

std::string Tracer::chrome_json() const {
  // Trace Event Format: ts/dur are in microseconds (fractions allowed).
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const Event& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    append_json_string(out, e.name);
    out += ",\"cat\":";
    append_json_string(out, e.category.empty() ? "default" : e.category);
    out += ",\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f",
                  static_cast<double>(e.ts) / 1e3);
    out += buf;
    if (e.ph == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f",
                    static_cast<double>(e.dur) / 1e3);
      out += buf;
    }
    if (e.ph == 'b' || e.ph == 'e') {
      out += ",\"id\":\"" + std::to_string(e.id) + '"';
    }
    if (e.ph == 'i') {
      out += ",\"s\":\"g\"";  // global-scope instant marker
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string Tracer::chrome_json(const std::string& extra_events) const {
  if (extra_events.empty()) return chrome_json();
  std::string out = chrome_json();
  // Splice the extra events in before the closing "]" of traceEvents.
  const std::string tail = "],\"displayTimeUnit\":\"ms\"}";
  out.resize(out.size() - tail.size());
  if (num_events() > 0) out += ',';
  out += extra_events;
  out += tail;
  return out;
}

void Tracer::clear() {
  events_.clear();
  stack_.clear();
  dropped_ = 0;
}

Tracer& tracer() {
  static Tracer* instance = new Tracer();
  return *instance;
}

}  // namespace rpm::telemetry
