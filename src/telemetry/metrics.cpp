#include "telemetry/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace rpm::telemetry {

const char* metric_type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

namespace {

std::string canonical_key(Labels& labels) {
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  std::string key;
  for (const Label& l : labels) {
    if (!key.empty()) key += ',';
    key += l.key;
    key += '=';
    key += l.value;
  }
  return key;
}

}  // namespace

const SeriesSample* Snapshot::find(const std::string& name,
                                   const Labels& labels) const {
  Labels sorted = labels;
  const std::string key = canonical_key(sorted);
  for (const SeriesSample& s : series) {
    if (s.name == name && s.label_key == key) return &s;
  }
  return nullptr;
}

double Snapshot::sum(const std::string& name, const Labels& subset) const {
  double total = 0.0;
  for (const SeriesSample& s : series) {
    if (s.name != name) continue;
    bool match = true;
    for (const Label& want : subset) {
      match = false;
      for (const Label& have : s.labels) {
        if (have.key == want.key && have.value == want.value) {
          match = true;
          break;
        }
      }
      if (!match) break;
    }
    if (!match) continue;
    total += s.type == MetricType::kGauge
                 ? s.gauge_value
                 : static_cast<double>(s.counter_value);
  }
  return total;
}

detail::SeriesCell* MetricsRegistry::get_or_create(
    const std::string& name, const std::string& help, Labels labels,
    MetricType type, double hist_min, double hist_max) {
  if (name.empty()) {
    throw std::invalid_argument("telemetry: metric name must not be empty");
  }
  const std::string key = canonical_key(labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto [fit, inserted] = families_.try_emplace(name);
  Family& fam = fit->second;
  if (inserted) {
    fam.type = type;
    fam.help = help;
    fam.hist_min = hist_min;
    fam.hist_max = hist_max;
  } else if (fam.type != type) {
    throw std::invalid_argument("telemetry: metric '" + name +
                                "' re-registered as a different type");
  }
  auto [sit, series_inserted] = fam.series.try_emplace(key);
  if (series_inserted) {
    auto cell = std::make_unique<detail::SeriesCell>();
    cell->labels = std::move(labels);
    cell->label_key = key;
    if (type == MetricType::kHistogram) {
      cell->histogram = std::make_unique<detail::HistogramCell>(fam.hist_min,
                                                                fam.hist_max);
    }
    sit->second = std::move(cell);
  }
  return sit->second.get();
}

Counter MetricsRegistry::counter(const std::string& name,
                                 const std::string& help, Labels labels) {
  return Counter(get_or_create(name, help, std::move(labels),
                               MetricType::kCounter, 0, 0));
}

Gauge MetricsRegistry::gauge(const std::string& name, const std::string& help,
                             Labels labels) {
  return Gauge(get_or_create(name, help, std::move(labels), MetricType::kGauge,
                             0, 0));
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     const std::string& help, Labels labels,
                                     double min_value, double max_value) {
  return Histogram(get_or_create(name, help, std::move(labels),
                                 MetricType::kHistogram, min_value,
                                 max_value));
}

int MetricsRegistry::add_collector(CollectorFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_collector_id_++;
  collectors_.emplace_back(id, std::move(fn));
  return id;
}

void MetricsRegistry::remove_collector(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(collectors_,
                [id](const auto& entry) { return entry.first == id; });
}

Snapshot MetricsRegistry::snapshot() {
  // Collectors run without the lock held: they call back into counter()/
  // gauge() on this registry to create or update series.
  std::vector<CollectorFn> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors.reserve(collectors_.size());
    for (const auto& [id, fn] : collectors_) collectors.push_back(fn);
  }
  for (const CollectorFn& fn : collectors) fn(*this);

  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, fam] : families_) {
    for (const auto& [key, cell] : fam.series) {
      SeriesSample s;
      s.name = name;
      s.labels = cell->labels;
      s.label_key = key;
      s.type = fam.type;
      s.help = fam.help;
      s.counter_value = cell->counter.load(std::memory_order_relaxed);
      s.gauge_value = cell->gauge.load(std::memory_order_relaxed);
      if (cell->histogram) {
        // Per-series lock: concurrent Histogram::observe must not tear the
        // (count, sum, percentile) sample.
        std::lock_guard<std::mutex> hist_lock(cell->histogram->mu);
        s.hist_count = cell->histogram->hist.count();
        s.hist_sum = cell->histogram->sum;
        s.hist_p50 = cell->histogram->hist.percentile(0.50);
        s.hist_p90 = cell->histogram->hist.percentile(0.90);
        s.hist_p99 = cell->histogram->hist.percentile(0.99);
        s.hist_p999 = cell->histogram->hist.percentile(0.999);
      }
      snap.series.push_back(std::move(s));
    }
  }
  return snap;
}

std::size_t MetricsRegistry::num_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, fam] : families_) n += fam.series.size();
  return n;
}

std::size_t MetricsRegistry::num_collectors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return collectors_.size();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  families_.clear();
  collectors_.clear();
}

MetricsRegistry& registry() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

}  // namespace rpm::telemetry
