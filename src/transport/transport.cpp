#include "transport/transport.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "prof/prof.h"

namespace rpm::transport {

// ---------------------------------------------------------------------------
// Channel

struct Channel::Impl : std::enable_shared_from_this<Channel::Impl> {
  Impl(sim::Scheduler& s, std::string n, Rng r, ChannelConfig c,
       std::shared_ptr<const Degradation> d)
      : sched(s), name(std::move(n)), rng(std::move(r)), cfg(c),
        deg(std::move(d)) {
    auto& reg = telemetry::registry();
    const auto result_counter = [&](const char* result) {
      return reg.counter("rpm_transport_msgs_total",
                         "Control-plane messages by channel and result",
                         {{"channel", name}, {"result", result}});
    };
    m_sent = result_counter("sent");
    m_delivered = result_counter("delivered");
    m_duplicate = result_counter("duplicate");
    m_lost = result_counter("lost");
    m_retry = result_counter("retry");
    m_dropped = result_counter("dropped");
    m_expired = result_counter("expired");
    m_depth = reg.gauge("rpm_transport_queue_depth",
                        "Unacked in-flight messages", {{"channel", name}});
    m_bytes = reg.counter("rpm_transport_bytes_total",
                          "Declared wire bytes transmitted (per attempt)",
                          {{"channel", name}});
    m_latency = reg.histogram("rpm_transport_delivery_latency_ns",
                              "send() to first delivery (includes retries)",
                              {{"channel", name}});
  }

  struct Msg {
    std::uint64_t seq = 0;
    std::any payload;
    Bytes wire_bytes = 0;  // declared size for the bandwidth cost model
    TimeNs first_sent = 0;
    std::uint32_t attempts = 0;
    bool cancelled = false;  // abandoned: pending events become no-ops
    bool acked = false;
    bool delivered = false;
  };

  sim::Scheduler& sched;
  // Where delivery events (handler invocations) run; defaults to the
  // sender's scheduler, rebound by bind_delivery_scheduler() to the
  // receiver's partition in partitioned runs.
  sim::Scheduler* deliver_sched = &sched;
  std::string name;
  Rng rng;
  ChannelConfig cfg;
  std::shared_ptr<const Degradation> deg;
  HandlerFn handler;
  ExpireFn on_expire;
  AttemptFn on_attempt;
  AckedFn on_acked;
  Counters counters;
  std::uint64_t next_seq = 1;
  bool peer_is_down = false;
  std::uint64_t peer_epoch = 1;  // bumped on every down -> up transition
  TimeNs busy_until = 0;  // sender link occupied serializing earlier messages
  // Ordered by seq so backpressure can evict the oldest unacked message.
  std::map<std::uint64_t, std::shared_ptr<Msg>> unacked;

  telemetry::Counter m_sent, m_delivered, m_duplicate, m_lost, m_retry,
      m_dropped, m_expired, m_bytes;
  telemetry::Gauge m_depth;
  telemetry::Histogram m_latency;

  void update_depth() {
    m_depth.set(static_cast<double>(unacked.size()));
  }

  [[nodiscard]] double effective_loss() const {
    return 1.0 - (1.0 - cfg.loss_prob) * (1.0 - deg->extra_loss);
  }

  TimeNs sample_latency() {
    TimeNs lat = cfg.base_latency + deg->extra_latency;
    if (cfg.latency_jitter > 0) lat += rng.uniform_int(0, cfg.latency_jitter);
    return lat;
  }

  /// Retransmit timer for the Nth attempt (1-based): exponential backoff
  /// capped at max_retry_timeout, plus per-channel deterministic jitter so
  /// concurrent retries across channels never fire on identical ticks.
  TimeNs retry_after(std::uint32_t attempt) {
    double t = static_cast<double>(cfg.retry_timeout) *
               std::pow(cfg.retry_backoff, static_cast<double>(attempt - 1));
    t = std::min(t, static_cast<double>(cfg.max_retry_timeout));
    TimeNs out = static_cast<TimeNs>(t);
    if (cfg.retry_jitter > 0) out += rng.uniform_int(0, cfg.retry_jitter);
    return out;
  }

  /// Abandon a message permanently; `result` names the telemetry counter.
  /// Takes the shared_ptr BY VALUE: callers pass the copy held inside the
  /// `unacked` map node, which the erase below destroys — a reference would
  /// dangle before the on_expire callback reads seq/payload through it.
  void abandon(std::shared_ptr<Msg> m, const telemetry::Counter& which,
               std::uint64_t Counters::*slot) {
    m->cancelled = true;
    ++(counters.*slot);
    which.inc();
    unacked.erase(m->seq);
    update_depth();
    if (on_expire) on_expire(m->seq, m->payload);
  }

  void attempt(const std::shared_ptr<Msg>& m) {
    ++m->attempts;
    if (m->attempts > 1) {
      ++counters.retries;
      m_retry.inc();
    }
    if (on_attempt) on_attempt(m->seq, m->attempts);
    // Bandwidth cost: the bytes leave the NIC on every attempt whether or
    // not the network delivers them, so count (and, with a configured link
    // rate, serialize) before the loss lottery.
    TimeNs ser_wait = 0;
    if (m->wire_bytes > 0) {
      counters.bytes_sent += static_cast<std::uint64_t>(m->wire_bytes);
      m_bytes.inc(static_cast<std::uint64_t>(m->wire_bytes));
      if (cfg.link_rate_Bps > 0.0) {
        const auto ser = static_cast<TimeNs>(
            static_cast<double>(m->wire_bytes) / cfg.link_rate_Bps * 1e9);
        const TimeNs start = std::max(busy_until, sched.now());
        busy_until = start + ser;
        ser_wait = busy_until - sched.now();
      }
    }
    std::weak_ptr<Impl> weak = weak_from_this();
    if (peer_is_down) {
      // The peer process is gone: the bytes leave the NIC and die unread.
      ++counters.lost;
      m_lost.inc();
    } else if (rng.chance(effective_loss())) {
      ++counters.lost;
      m_lost.inc();
    } else {
      TimeNs lat = ser_wait + sample_latency();
      if (cfg.reorder_prob > 0.0 && rng.chance(cfg.reorder_prob)) {
        lat += cfg.reorder_extra;
      }
      deliver_sched->schedule_at(sched.now() + lat, [weak, m] {
        auto self = weak.lock();
        if (!self || m->cancelled) return;
        if (self->peer_is_down) {
          // The peer crashed while this delivery was in flight.
          ++self->counters.lost;
          self->m_lost.inc();
          return;
        }
        self->deliver(m);
      });
    }
    sched.schedule_after(retry_after(m->attempts), [weak, m] {
      auto self = weak.lock();
      if (!self || m->cancelled || m->acked) return;
      if (m->attempts >= self->cfg.max_attempts) {
        if (m->delivered) {
          // Delivered, but every ack was lost: the receiver has it, so stop
          // retrying without recording a failure (keeps the invariant
          // delivered + expired + dropped == sent at quiescence).
          m->cancelled = true;
          self->unacked.erase(m->seq);
          self->update_depth();
        } else {
          self->abandon(m, self->m_expired, &Counters::expired);
        }
      } else {
        self->attempt(m);
      }
    });
  }

  void deliver(const std::shared_ptr<Msg>& m) {
    if (m->delivered) {
      ++counters.duplicates;
      m_duplicate.inc();
    } else {
      m->delivered = true;
      ++counters.delivered;
      m_delivered.inc();
      m_latency.observe(static_cast<double>(sched.now() - m->first_sent));
    }
    // The handler runs for duplicates too (an at-least-once transport cannot
    // hide them); receivers dedup on header fields.
    if (handler) {
      prof::StageScope prof_scope(prof::Stage::kTransportDeliver);
      handler(m->seq, m->payload);
    }
    // Ack path: same latency/loss model in the reverse direction. A lost ack
    // leaves the message unacked, so the retry timer fires a duplicate.
    if (rng.chance(effective_loss())) return;
    const TimeNs lat = sample_latency();
    std::weak_ptr<Impl> weak = weak_from_this();
    sched.schedule_after(lat, [weak, m] {
      auto self = weak.lock();
      if (!self || m->cancelled || m->acked) return;
      m->acked = true;
      self->unacked.erase(m->seq);
      self->update_depth();
      if (self->on_acked) self->on_acked(m->seq);
    });
  }
};

Channel::Channel(sim::Scheduler& sched, std::string name, Rng rng,
                 ChannelConfig cfg,
                 std::shared_ptr<const Degradation> degradation)
    : impl_(std::make_shared<Impl>(sched, std::move(name), std::move(rng),
                                   cfg, std::move(degradation))) {}

Channel::~Channel() = default;

std::uint64_t Channel::send(std::any payload) {
  return send(std::move(payload), 0);
}

std::uint64_t Channel::send(std::any payload, Bytes wire_bytes) {
  Impl& im = *impl_;
  if (im.unacked.size() >= im.cfg.max_in_flight && !im.unacked.empty()) {
    im.abandon(im.unacked.begin()->second, im.m_dropped, &Counters::dropped);
  }
  auto m = std::make_shared<Impl::Msg>();
  m->seq = im.next_seq++;
  m->payload = std::move(payload);
  m->wire_bytes = wire_bytes;
  m->first_sent = im.sched.now();
  im.unacked.emplace(m->seq, m);
  ++im.counters.sent;
  im.m_sent.inc();
  im.update_depth();
  im.attempt(m);
  return m->seq;
}

void Channel::set_handler(HandlerFn handler) {
  impl_->handler = std::move(handler);
}

void Channel::bind_delivery_scheduler(sim::Scheduler& sched) {
  impl_->deliver_sched = &sched;
}

void Channel::set_on_expire(ExpireFn fn) { impl_->on_expire = std::move(fn); }

void Channel::set_on_attempt(AttemptFn fn) {
  impl_->on_attempt = std::move(fn);
}

void Channel::set_on_acked(AckedFn fn) { impl_->on_acked = std::move(fn); }

void Channel::cancel_unacked() {
  Impl& im = *impl_;
  // Move the map out first: on_expire callbacks may re-enter the channel.
  auto abandoned = std::move(im.unacked);
  im.unacked.clear();
  im.update_depth();
  for (auto& [seq, m] : abandoned) {
    m->cancelled = true;
    ++im.counters.dropped;
    im.m_dropped.inc();
    if (im.on_expire) im.on_expire(seq, m->payload);
  }
}

void Channel::note_app_drop(std::uint64_t n) {
  impl_->counters.dropped += n;
  impl_->m_dropped.inc(n);
}

void Channel::set_peer_down(bool down) {
  Impl& im = *impl_;
  if (im.peer_is_down == down) return;
  im.peer_is_down = down;
  if (!down) ++im.peer_epoch;  // a fresh (peer, epoch) establishment
}

bool Channel::peer_down() const { return impl_->peer_is_down; }

std::uint64_t Channel::peer_epoch() const { return impl_->peer_epoch; }

const Channel::Counters& Channel::counters() const {
  return impl_->counters;
}

std::size_t Channel::in_flight() const { return impl_->unacked.size(); }

const std::string& Channel::name() const { return impl_->name; }

const ChannelConfig& Channel::config() const { return impl_->cfg; }

// ---------------------------------------------------------------------------
// RpcChannel

RpcChannel::RpcChannel(sim::Scheduler& sched, std::string name, Rng rng,
                       ChannelConfig cfg,
                       std::shared_ptr<const Degradation> degradation,
                       ServerFn server)
    : req_(std::make_unique<Channel>(sched, name + ".req", rng.fork(), cfg,
                                     degradation)),
      rsp_(std::make_unique<Channel>(sched, name + ".rsp", rng.fork(), cfg,
                                     degradation)),
      server_(std::make_shared<ServerFn>(std::move(server))),
      pending_(std::make_shared<
               std::unordered_map<std::uint64_t, ResponseFn>>()) {
  // Server side: every delivered request (duplicates included — the server
  // must be idempotent) produces a response correlated by request seq.
  req_->set_handler([srv = server_, rsp = rsp_.get()](std::uint64_t seq,
                                                      std::any& payload) {
    if (!*srv) return;
    Envelope env;
    env.request_seq = seq;
    env.payload = (*srv)(payload);
    rsp->send(std::any(std::move(env)));
  });
  // Client side: first response wins; later duplicates find no pending entry.
  rsp_->set_handler([pending = pending_](std::uint64_t, std::any& payload) {
    auto* env = std::any_cast<Envelope>(&payload);
    if (env == nullptr) return;
    auto it = pending->find(env->request_seq);
    if (it == pending->end()) return;
    ResponseFn fn = std::move(it->second);
    pending->erase(it);
    if (fn) fn(env->payload);
  });
  // A request that will never be delivered can never complete.
  req_->set_on_expire([pending = pending_](std::uint64_t seq, std::any&) {
    pending->erase(seq);
  });
}

RpcChannel::~RpcChannel() = default;

std::uint64_t RpcChannel::call(std::any request, ResponseFn on_response) {
  const std::uint64_t seq = req_->send(std::move(request));
  // send() may have evicted an older request; its on_expire already pruned
  // pending_, so this insert is the only live entry for `seq`.
  (*pending_)[seq] = std::move(on_response);
  return seq;
}

void RpcChannel::cancel_pending() {
  pending_->clear();
  req_->cancel_unacked();
}

void RpcChannel::set_server(ServerFn server) { *server_ = std::move(server); }

void RpcChannel::set_server_down(bool down) { req_->set_peer_down(down); }

bool RpcChannel::server_down() const { return req_->peer_down(); }

std::size_t RpcChannel::pending_calls() const { return pending_->size(); }

// ---------------------------------------------------------------------------
// ControlPlane

ControlPlane::ControlPlane(sim::Scheduler& sched, Rng rng,
                           ChannelConfig defaults)
    : sched_(sched),
      rng_(std::move(rng)),
      defaults_(defaults),
      degradation_(std::make_shared<Degradation>()) {}

Channel& ControlPlane::make_channel(std::string name,
                                    Channel::HandlerFn handler,
                                    std::optional<ChannelConfig> cfg) {
  channels_.push_back(std::make_unique<Channel>(
      sched_, std::move(name), rng_.fork(), cfg.value_or(defaults_),
      degradation_));
  channels_.back()->set_handler(std::move(handler));
  return *channels_.back();
}

RpcChannel& ControlPlane::make_rpc_channel(std::string name,
                                           RpcChannel::ServerFn server,
                                           std::optional<ChannelConfig> cfg) {
  rpcs_.push_back(std::make_unique<RpcChannel>(
      sched_, std::move(name), rng_.fork(), cfg.value_or(defaults_),
      degradation_, std::move(server)));
  return *rpcs_.back();
}

void ControlPlane::set_degradation(TimeNs extra_latency, double extra_loss) {
  degradation_->extra_latency = extra_latency;
  degradation_->extra_loss = std::clamp(extra_loss, 0.0, 1.0);
}

}  // namespace rpm::transport
