// Control-plane transport: the message bus between Agents, the Controller,
// and the Analyzer.
//
// In production these are separate services talking over a real datacenter
// control network (§4): Agents upload record batches to the Analyzer over
// TCP, register with the Controller, and pull pinglists by RPC. This module
// gives the reproduction that shape without real sockets: a `Channel` is a
// unidirectional, typed message stream whose simulation backend models
//
//   * delivery latency (base + uniform jitter, per message),
//   * loss (Bernoulli per transmission attempt, on data AND acks),
//   * reordering (a loss-free extra delay lottery per attempt),
//   * at-least-once retry with exponential backoff and an attempt cap,
//   * a bounded in-flight window with drop-oldest backpressure,
//
// all on the shared `sim::Scheduler` clock with a per-channel forked
// `Rng`, so runs stay fully deterministic. Retries mean *duplicates*:
// receivers must deduplicate (the Analyzer suppresses repeated batch
// sequence numbers; Controller RPCs are idempotent).
//
// `RpcChannel` composes two Channels (request/response) into a
// request-response pair correlated by the request's sequence number; the
// client sees exactly one response per call even when retries made the
// server execute several times.
//
// `ControlPlane` owns every channel of a cluster, hands out forked RNG
// streams, and carries the shared `Degradation` knob that the
// control-plane-degradation fault (src/faults) flips: extra latency and
// extra loss applied to every channel at once.
//
// Every channel self-reports through src/telemetry:
//   rpm_transport_msgs_total{channel,result=sent|delivered|duplicate|lost|
//                            retry|dropped|expired}
//   rpm_transport_queue_depth{channel}        (unacked in-flight window)
//   rpm_transport_delivery_latency_ns{channel} (send -> first delivery)
//   rpm_transport_bytes_total{channel}        (declared wire bytes, per attempt)
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/scheduler.h"
#include "telemetry/metrics.h"

namespace rpm::transport {

struct ChannelConfig {
  TimeNs base_latency = usec(50);    // one-way control-plane latency
  TimeNs latency_jitter = usec(25);  // uniform [0, jitter) added per message
  double loss_prob = 0.0;            // per transmission attempt (data + ack)
  double reorder_prob = 0.0;         // chance of an extra out-of-order delay
  TimeNs reorder_extra = usec(200);  // the extra delay when reordered
  std::size_t max_in_flight = 256;   // unacked window; beyond: drop oldest
  std::uint32_t max_attempts = 6;    // transmissions before giving up
  TimeNs retry_timeout = msec(50);   // first retransmit timer
  double retry_backoff = 2.0;        // timer multiplier per attempt
  TimeNs max_retry_timeout = sec(2); // backoff ceiling
  // Uniform [0, retry_jitter] added to every retransmit timer from the
  // channel's own seeded Rng: channels that saw the same loss at the same
  // tick retry on different ticks (no thundering herd), deterministically.
  TimeNs retry_jitter = msec(5);
  // Bandwidth/serialization cost model (ROADMAP "per-channel bandwidth
  // cost"): when > 0, a message sent with a declared wire size occupies the
  // sender's link for wire_bytes/link_rate_Bps before its propagation
  // latency, and messages queue behind one another — large raw UploadBatches
  // see proportionally later delivery than compact SketchReports. 0 keeps
  // the historical size-blind behavior (byte-identical schedules).
  double link_rate_Bps = 0.0;
};

/// Fault-injectable control-plane impairment, shared by every channel of a
/// ControlPlane. Effective loss = 1 - (1-loss_prob)*(1-extra_loss).
struct Degradation {
  TimeNs extra_latency = 0;
  double extra_loss = 0.0;
};

/// Unidirectional at-least-once message stream. Single-threaded (simulator
/// clock); safe to destroy with deliveries still queued — in-flight events
/// hold weak references to the channel state.
class Channel {
 public:
  /// Receiver callback. `payload` is mutable so handlers can move large
  /// message bodies out; on duplicate deliveries the payload may therefore
  /// be moved-from — dedup on header fields before touching the body.
  /// Handlers always run on the simulation thread (deliveries are scheduler
  /// events); a handler that wants multi-threaded processing hands off to
  /// its own machinery — e.g. the upload handler moves the batch into
  /// `Analyzer::sink().submit()`, which routes to worker queues when
  /// `ingest.threads > 0`.
  using HandlerFn = std::function<void(std::uint64_t seq, std::any& payload)>;
  /// Expiry/abandon callback. `payload` is handed back mutable so the
  /// application can move the message body out and re-queue it at its own
  /// layer (ROADMAP "application-level retry for expired uploads"). If the
  /// message was already delivered when abandoned (backpressure eviction
  /// racing a lost ack), the payload may be moved-from — check before
  /// re-sending. May be invoked from inside send() (drop-oldest
  /// backpressure): do not re-enter the channel synchronously.
  using ExpireFn = std::function<void(std::uint64_t seq, std::any& payload)>;
  /// Observer of transmission attempts (attempt is 1-based).
  using AttemptFn =
      std::function<void(std::uint64_t seq, std::uint32_t attempt)>;
  /// Observer invoked when the sender learns a message was acked.
  using AckedFn = std::function<void(std::uint64_t seq)>;

  Channel(sim::Scheduler& sched, std::string name, Rng rng,
          ChannelConfig cfg, std::shared_ptr<const Degradation> degradation);
  ~Channel();
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueue a message; returns its channel-unique sequence number. If the
  /// in-flight window is full the OLDEST unacked message is dropped
  /// (counted as result="dropped") — latest-wins backpressure, matching
  /// what a monitoring upload path wants under overload.
  std::uint64_t send(std::any payload);

  /// As send(), declaring the message's wire size: every transmission
  /// attempt adds `wire_bytes` to rpm_transport_bytes_total{channel}, and
  /// when ChannelConfig::link_rate_Bps > 0 the attempt also waits for the
  /// link to serialize those bytes (sequentially across queued messages)
  /// before its propagation latency. wire_bytes == 0 behaves exactly like
  /// the plain send().
  std::uint64_t send(std::any payload, Bytes wire_bytes);

  /// Sender-side handler swap (nullptr detaches: messages still count as
  /// delivered but are discarded). The consumer calls this once at setup.
  void set_handler(HandlerFn handler);

  /// Bind the receiving endpoint to a partition: delivery events (the
  /// handler invocations) are scheduled on `sched` instead of the channel's
  /// construction scheduler. Pass a ParallelScheduler::partition(p) facade
  /// to make a cross-partition channel's handler run on the receiver's
  /// partition clock; retry timers and ack bookkeeping stay on the sender's
  /// scheduler. Call before traffic flows.
  void bind_delivery_scheduler(sim::Scheduler& sched);

  /// Invoked when a message exhausts max_attempts without an ack (or is
  /// abandoned by backpressure / cancel_unacked), with the payload returned.
  void set_on_expire(ExpireFn fn);

  /// Observability hooks (flight recorder / per-message tracing). Both are
  /// one branch per event when unset.
  void set_on_attempt(AttemptFn fn);
  void set_on_acked(AckedFn fn);

  /// Abandon every unacked message (process shutdown / host death); each is
  /// counted as result="dropped" and its retries stop.
  void cancel_unacked();

  /// Record `n` messages the application discarded before they ever reached
  /// send() (e.g. an Agent on a dead host clearing its outbox). Keeps every
  /// control-plane drop in one counter: rpm_transport_msgs_total{result="dropped"}.
  void note_app_drop(std::uint64_t n = 1);

  /// Connection lifecycle: channels are established per (peer, epoch).
  /// While the peer process is down every transmission attempt is eaten by
  /// the network (counted lost), including deliveries already in flight;
  /// retries keep running and expire normally, so the sender experiences the
  /// outage as expired messages handed back through on_expire. Bringing the
  /// peer back up starts a new connection epoch.
  void set_peer_down(bool down);
  [[nodiscard]] bool peer_down() const;
  /// Number of times the peer has been (re)established, starting at 1.
  [[nodiscard]] std::uint64_t peer_epoch() const;

  struct Counters {
    std::uint64_t sent = 0;        // send() calls accepted
    std::uint64_t delivered = 0;   // first deliveries to the handler
    std::uint64_t duplicates = 0;  // repeat deliveries (retry raced the ack)
    std::uint64_t lost = 0;        // transmission attempts the network ate
    std::uint64_t retries = 0;     // retransmissions
    std::uint64_t dropped = 0;     // backpressure + cancel + app drops
    std::uint64_t expired = 0;     // gave up after max_attempts, undelivered
    std::uint64_t bytes_sent = 0;  // declared wire bytes, per attempt
  };
  [[nodiscard]] const Counters& counters() const;
  [[nodiscard]] std::size_t in_flight() const;
  [[nodiscard]] const std::string& name() const;
  [[nodiscard]] const ChannelConfig& config() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Request-response on top of two Channels ("<name>.req" / "<name>.rsp"),
/// correlated by request sequence number. At-least-once requests against an
/// idempotent server; the client callback fires exactly once (first response
/// wins, duplicates are absorbed by the response channel's dedup here).
class RpcChannel {
 public:
  /// Server: consumes a request payload, produces the response payload.
  /// May run more than once per logical request (retried deliveries) — must
  /// be idempotent.
  using ServerFn = std::function<std::any(const std::any& request)>;
  /// Client completion. Mutable payload so large responses can be moved out.
  using ResponseFn = std::function<void(std::any& response)>;

  RpcChannel(sim::Scheduler& sched, std::string name, Rng rng,
             ChannelConfig cfg, std::shared_ptr<const Degradation> degradation,
             ServerFn server);
  ~RpcChannel();
  RpcChannel(const RpcChannel&) = delete;
  RpcChannel& operator=(const RpcChannel&) = delete;

  /// Issue a call; `on_response` fires once, or never if the request
  /// expires (caller owns retry-at-the-application-layer policy).
  std::uint64_t call(std::any request, ResponseFn on_response);

  /// Drop every outstanding call's completion (process shutdown).
  void cancel_pending();

  void set_server(ServerFn server);

  /// Server-process lifecycle: while down, requests die on the wire (the
  /// client sees silence, then expiry) and the handler never runs. Responses
  /// already in flight from before the crash may still arrive.
  void set_server_down(bool down);
  [[nodiscard]] bool server_down() const;

  [[nodiscard]] Channel& request_channel() { return *req_; }
  [[nodiscard]] Channel& response_channel() { return *rsp_; }
  [[nodiscard]] std::size_t pending_calls() const;

 private:
  struct Envelope {
    std::uint64_t request_seq = 0;
    std::any payload;
  };

  std::unique_ptr<Channel> req_;
  std::unique_ptr<Channel> rsp_;
  std::shared_ptr<ServerFn> server_;
  // shared so the response handler survives if the RpcChannel dies first
  std::shared_ptr<std::unordered_map<std::uint64_t, ResponseFn>> pending_;
};

/// Factory + owner of every control-plane channel in a cluster. One per
/// Cluster; faults degrade the whole plane through set_degradation().
class ControlPlane {
 public:
  ControlPlane(sim::Scheduler& sched, Rng rng, ChannelConfig defaults = {});

  /// Create (and own) a channel; each gets an independent forked Rng stream.
  Channel& make_channel(std::string name, Channel::HandlerFn handler,
                        std::optional<ChannelConfig> cfg = std::nullopt);
  RpcChannel& make_rpc_channel(std::string name, RpcChannel::ServerFn server,
                               std::optional<ChannelConfig> cfg = std::nullopt);

  void set_degradation(TimeNs extra_latency, double extra_loss);
  void clear_degradation() { set_degradation(0, 0.0); }
  [[nodiscard]] const Degradation& degradation() const { return *degradation_; }

  [[nodiscard]] const ChannelConfig& defaults() const { return defaults_; }
  [[nodiscard]] std::size_t num_channels() const {
    return channels_.size() + 2 * rpcs_.size();
  }

 private:
  sim::Scheduler& sched_;
  Rng rng_;
  ChannelConfig defaults_;
  std::shared_ptr<Degradation> degradation_;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<RpcChannel>> rpcs_;
};

}  // namespace rpm::transport
