// faults::FaultCatalog — data-driven, named fault constructors.
//
// The chaos harness originally carried fault injections as opaque
// std::functions, so a ChaosPlan could be scripted but never serialized:
// every repro artifact had to be C++. FaultSpec replaces the closure with a
// plain parameter record (constructor name + the entity ids and knobs that
// constructor takes), and the catalog maps each name to
//
//   * apply(injector, spec)  — run the named FaultInjector constructor,
//   * sample(rng, topo)      — draw a valid spec against a topology (the
//                              chaos::CampaignGen's weighted step source),
//   * clearable              — whether a generated plan may schedule a
//                              mid-campaign clear() for it.
//
// Specs round-trip through JSON (spec_to_value / spec_from_value), which is
// what makes fuzzer counterexamples replayable: a minimized failing plan is
// a small JSON file, not a core dump.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"
#include "common/rng.h"
#include "common/types.h"
#include "faults/faults.h"
#include "topo/topology.h"

namespace rpm::faults {

/// Serializable parameter record for one catalog constructor. Only the
/// fields the named constructor reads are meaningful; the rest stay at
/// their defaults (and are omitted from JSON).
struct FaultSpec {
  std::string ctor;  // catalog entry name ("" = invalid)
  std::uint32_t rnic = HostId::kInvalidValue;
  std::uint32_t host = HostId::kInvalidValue;
  std::uint32_t link = HostId::kInvalidValue;
  std::uint32_t sw = HostId::kInvalidValue;
  TimeNs down_time = 0;      // flapping dwell
  TimeNs up_time = 0;        // flapping dwell
  TimeNs extra_latency = 0;  // control-plane degradation
  double prob = 0.0;         // corruption drop probability
  double factor = 0.0;       // pcie downgrade factor
  double load = 0.0;         // cpu overload target
  double extra_loss = 0.0;   // control-plane degradation

  [[nodiscard]] bool valid() const { return !ctor.empty(); }

  // Named constructors mirroring FaultInjector's surface (Table 2 + noise).
  static FaultSpec rnic_flapping(RnicId rnic, TimeNs down, TimeNs up);
  static FaultSpec switch_port_flapping(LinkId link, TimeNs down, TimeNs up);
  static FaultSpec corruption(LinkId link, double drop_prob);
  static FaultSpec rnic_down(RnicId rnic);
  static FaultSpec host_down(HostId host);
  static FaultSpec pfc_deadlock(LinkId link);
  static FaultSpec route_missing(RnicId rnic);
  static FaultSpec gid_index_missing(RnicId rnic);
  static FaultSpec acl_error(SwitchId sw);
  static FaultSpec pfc_misconfigured(LinkId link);
  static FaultSpec cpu_overload(HostId host, double load = 0.97);
  static FaultSpec pcie_downgrade(RnicId rnic, double factor = 0.25);
  static FaultSpec agent_cpu_occupation(HostId host);
  static FaultSpec control_plane_degradation(TimeNs extra_latency,
                                             double extra_loss);
  static FaultSpec qpn_reset(HostId host);
};

/// JSON codec: only non-default fields are emitted, deterministically.
json::Value spec_to_value(const FaultSpec& spec);
FaultSpec spec_from_value(const json::Value& v);  // throws std::runtime_error

class FaultCatalog {
 public:
  struct Entry {
    const char* name;
    /// Whether a generated campaign may schedule a mid-run clear() (faults
    /// whose revert is itself an interesting event). Non-clearable entries
    /// stay active to the end of the campaign.
    bool clearable;
    FaultSpec (*sample)(Rng& rng, const topo::Topology& topo);
    int (*apply)(FaultInjector& injector, const FaultSpec& spec);
  };

  /// The process-wide catalog (immutable, thread-safe after first use).
  static const FaultCatalog& instance();

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  /// nullptr when unknown.
  [[nodiscard]] const Entry* find(std::string_view name) const;

  /// Run the spec's named constructor; returns the injector handle.
  /// Throws std::invalid_argument on an unknown constructor name.
  int apply(FaultInjector& injector, const FaultSpec& spec) const;

 private:
  FaultCatalog();
  std::vector<Entry> entries_;
};

}  // namespace rpm::faults
