#include "faults/catalog.h"

#include <stdexcept>

namespace rpm::faults {

namespace {

constexpr std::uint32_t kNone = HostId::kInvalidValue;

RnicId pick_rnic(Rng& rng, const topo::Topology& topo) {
  return RnicId{static_cast<std::uint32_t>(rng.index(topo.num_rnics()))};
}

HostId pick_host(Rng& rng, const topo::Topology& topo) {
  return HostId{static_cast<std::uint32_t>(rng.index(topo.num_hosts()))};
}

/// Switch-to-switch links only: faulting a host uplink is indistinguishable
/// from an RNIC fault at the Analyzer's granularity, so the generator keeps
/// link faults on the fabric where switch localization is well-defined.
LinkId pick_fabric_link(Rng& rng, const topo::Topology& topo) {
  std::vector<LinkId> fabric;
  for (const topo::Link& l : topo.links()) {
    if (l.from.is_switch() && l.to.is_switch()) fabric.push_back(l.id);
  }
  if (fabric.empty()) {
    // Degenerate single-switch topology: fall back to any link.
    return topo.links().at(rng.index(topo.num_links())).id;
  }
  return fabric[rng.index(fabric.size())];
}

TimeNs pick_dwell(Rng& rng) { return sec(rng.uniform_int(2, 6)); }

}  // namespace

FaultSpec FaultSpec::rnic_flapping(RnicId rnic, TimeNs down, TimeNs up) {
  FaultSpec s;
  s.ctor = "rnic-flapping";
  s.rnic = rnic.value;
  s.down_time = down;
  s.up_time = up;
  return s;
}

FaultSpec FaultSpec::switch_port_flapping(LinkId link, TimeNs down,
                                          TimeNs up) {
  FaultSpec s;
  s.ctor = "switch-port-flapping";
  s.link = link.value;
  s.down_time = down;
  s.up_time = up;
  return s;
}

FaultSpec FaultSpec::corruption(LinkId link, double drop_prob) {
  FaultSpec s;
  s.ctor = "corruption";
  s.link = link.value;
  s.prob = drop_prob;
  return s;
}

FaultSpec FaultSpec::rnic_down(RnicId rnic) {
  FaultSpec s;
  s.ctor = "rnic-down";
  s.rnic = rnic.value;
  return s;
}

FaultSpec FaultSpec::host_down(HostId host) {
  FaultSpec s;
  s.ctor = "host-down";
  s.host = host.value;
  return s;
}

FaultSpec FaultSpec::pfc_deadlock(LinkId link) {
  FaultSpec s;
  s.ctor = "pfc-deadlock";
  s.link = link.value;
  return s;
}

FaultSpec FaultSpec::route_missing(RnicId rnic) {
  FaultSpec s;
  s.ctor = "route-missing";
  s.rnic = rnic.value;
  return s;
}

FaultSpec FaultSpec::gid_index_missing(RnicId rnic) {
  FaultSpec s;
  s.ctor = "gid-index-missing";
  s.rnic = rnic.value;
  return s;
}

FaultSpec FaultSpec::acl_error(SwitchId sw) {
  FaultSpec s;
  s.ctor = "acl-error";
  s.sw = sw.value;
  return s;
}

FaultSpec FaultSpec::pfc_misconfigured(LinkId link) {
  FaultSpec s;
  s.ctor = "pfc-misconfigured";
  s.link = link.value;
  return s;
}

FaultSpec FaultSpec::cpu_overload(HostId host, double load) {
  FaultSpec s;
  s.ctor = "cpu-overload";
  s.host = host.value;
  s.load = load;
  return s;
}

FaultSpec FaultSpec::pcie_downgrade(RnicId rnic, double factor) {
  FaultSpec s;
  s.ctor = "pcie-downgrade";
  s.rnic = rnic.value;
  s.factor = factor;
  return s;
}

FaultSpec FaultSpec::agent_cpu_occupation(HostId host) {
  FaultSpec s;
  s.ctor = "agent-cpu-occupation";
  s.host = host.value;
  return s;
}

FaultSpec FaultSpec::control_plane_degradation(TimeNs extra_latency,
                                               double extra_loss) {
  FaultSpec s;
  s.ctor = "control-plane-degradation";
  s.extra_latency = extra_latency;
  s.extra_loss = extra_loss;
  return s;
}

FaultSpec FaultSpec::qpn_reset(HostId host) {
  FaultSpec s;
  s.ctor = "qpn-reset";
  s.host = host.value;
  return s;
}

json::Value spec_to_value(const FaultSpec& spec) {
  json::Value v{json::Object{}};
  v.set("ctor", spec.ctor);
  if (spec.rnic != kNone) v.set("rnic", spec.rnic);
  if (spec.host != kNone) v.set("host", spec.host);
  if (spec.link != kNone) v.set("link", spec.link);
  if (spec.sw != kNone) v.set("switch", spec.sw);
  if (spec.down_time != 0) v.set("down_time_ns", spec.down_time);
  if (spec.up_time != 0) v.set("up_time_ns", spec.up_time);
  if (spec.extra_latency != 0) v.set("extra_latency_ns", spec.extra_latency);
  if (spec.prob != 0.0) v.set("prob", spec.prob);
  if (spec.factor != 0.0) v.set("factor", spec.factor);
  if (spec.load != 0.0) v.set("load", spec.load);
  if (spec.extra_loss != 0.0) v.set("extra_loss", spec.extra_loss);
  return v;
}

FaultSpec spec_from_value(const json::Value& v) {
  if (!v.is_object()) throw std::runtime_error("FaultSpec: not an object");
  FaultSpec s;
  s.ctor = v.get_string("ctor");
  if (s.ctor.empty()) throw std::runtime_error("FaultSpec: missing ctor");
  s.rnic = static_cast<std::uint32_t>(v.get_int("rnic", kNone));
  s.host = static_cast<std::uint32_t>(v.get_int("host", kNone));
  s.link = static_cast<std::uint32_t>(v.get_int("link", kNone));
  s.sw = static_cast<std::uint32_t>(v.get_int("switch", kNone));
  s.down_time = v.get_int("down_time_ns", 0);
  s.up_time = v.get_int("up_time_ns", 0);
  s.extra_latency = v.get_int("extra_latency_ns", 0);
  s.prob = v.get_double("prob", 0.0);
  s.factor = v.get_double("factor", 0.0);
  s.load = v.get_double("load", 0.0);
  s.extra_loss = v.get_double("extra_loss", 0.0);
  return s;
}

const FaultCatalog& FaultCatalog::instance() {
  static const FaultCatalog catalog;
  return catalog;
}

FaultCatalog::FaultCatalog() {
  entries_ = {
      {"rnic-flapping", /*clearable=*/true,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::rnic_flapping(pick_rnic(rng, topo),
                                         pick_dwell(rng), pick_dwell(rng));
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_rnic_flapping(RnicId{s.rnic}, s.down_time,
                                         s.up_time);
       }},
      {"switch-port-flapping", true,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::switch_port_flapping(
             pick_fabric_link(rng, topo), pick_dwell(rng), pick_dwell(rng));
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_switch_port_flapping(LinkId{s.link}, s.down_time,
                                                s.up_time);
       }},
      {"corruption", true,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::corruption(pick_fabric_link(rng, topo),
                                      0.3 + 0.4 * rng.uniform());
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_corruption(LinkId{s.link}, s.prob);
       }},
      {"rnic-down", true,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::rnic_down(pick_rnic(rng, topo));
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_rnic_down(RnicId{s.rnic});
       }},
      {"host-down", true,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::host_down(pick_host(rng, topo));
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_host_down(HostId{s.host});
       }},
      {"pfc-deadlock", true,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::pfc_deadlock(pick_fabric_link(rng, topo));
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_pfc_deadlock(LinkId{s.link});
       }},
      {"route-missing", true,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::route_missing(pick_rnic(rng, topo));
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_route_missing(RnicId{s.rnic});
       }},
      {"gid-index-missing", true,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::gid_index_missing(pick_rnic(rng, topo));
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_gid_index_missing(RnicId{s.rnic});
       }},
      {"acl-error", true,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::acl_error(SwitchId{
             static_cast<std::uint32_t>(rng.index(topo.num_switches()))});
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         // Wildcard src/dst: the switch denies all probe traffic through it.
         return inj.inject_acl_error(SwitchId{s.sw}, IpAddr{}, IpAddr{});
       }},
      {"pfc-misconfigured", true,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::pfc_misconfigured(pick_fabric_link(rng, topo));
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_pfc_misconfigured(LinkId{s.link});
       }},
      {"cpu-overload", true,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::cpu_overload(pick_host(rng, topo),
                                        0.90 + 0.09 * rng.uniform());
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_cpu_overload(HostId{s.host}, s.load);
       }},
      {"pcie-downgrade", true,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::pcie_downgrade(pick_rnic(rng, topo),
                                          0.2 + 0.3 * rng.uniform());
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_pcie_downgrade(RnicId{s.rnic}, s.factor);
       }},
      {"agent-cpu-occupation", true,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::agent_cpu_occupation(pick_host(rng, topo));
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_agent_cpu_occupation(HostId{s.host});
       }},
      {"control-plane-degradation", true,
       [](Rng& rng, const topo::Topology&) {
         return FaultSpec::control_plane_degradation(
             msec(rng.uniform_int(10, 50)), 0.05 + 0.15 * rng.uniform());
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_control_plane_degradation(s.extra_latency,
                                                     s.extra_loss);
       }},
      {"qpn-reset", /*clearable=*/false,
       [](Rng& rng, const topo::Topology& topo) {
         return FaultSpec::qpn_reset(pick_host(rng, topo));
       },
       [](FaultInjector& inj, const FaultSpec& s) {
         return inj.inject_qpn_reset(HostId{s.host});
       }},
  };
}

const FaultCatalog::Entry* FaultCatalog::find(std::string_view name) const {
  for (const Entry& e : entries_) {
    if (name == e.name) return &e;
  }
  return nullptr;
}

int FaultCatalog::apply(FaultInjector& injector, const FaultSpec& spec) const {
  const Entry* e = find(spec.ctor);
  if (e == nullptr) {
    throw std::invalid_argument("FaultCatalog: unknown constructor '" +
                                spec.ctor + "'");
  }
  return e->apply(injector, spec);
}

}  // namespace rpm::faults
