// Fault injection covering the paper's entire problem catalogue (Table 2)
// plus the two probe-noise sources the Analyzer must filter (§4.3.1 QPN
// reset, Figure 6 right Agent-CPU occupation).
//
// Every injection returns a handle and records ground truth (kind + the
// faulted entity) so benches can score R-Pingmesh's localization accuracy
// against what was actually injected (Figure 6 left).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "host/cluster.h"
#include "sim/scheduler.h"

namespace rpm::faults {

/// The root causes of Table 2 (numbered as in the paper) plus probe noise.
enum class FaultKind : std::uint8_t {
  kRnicFlapping = 1,        // #1 (RNIC side)
  kSwitchPortFlapping,      // #1 (switch side)
  kPacketCorruption,        // #2 damaged fiber / dusty module
  kRnicDown,                // #3
  kHostDown,                // #4
  kPfcDeadlock,             // #5
  kRnicRouteMissing,        // #6
  kRnicGidIndexMissing,     // #7
  kSwitchAclError,          // #8
  kPfcMisconfigured,        // #9 headroom wrong -> drops under congestion
  kUnevenLoadBalance,       // #10 (emerges from traffic; helper provided)
  kServiceInterference,     // #11 (emerges from traffic; helper provided)
  kCpuOverload,             // #12
  kPcieDowngrade,           // #13/#14 -> PFC storm precursor
  kAgentCpuOccupation,      // Fig. 6 right: probe noise, not a real fault
  kQpnReset,                // §4.3.1: probe noise after Agent restart
  kControlPlaneDegradation, // lossy/slow Agent<->Controller/Analyzer plane
};

const char* fault_kind_name(FaultKind k);

/// Whether this root cause is a *network* problem (RNIC or switch side) as
/// opposed to host-side or pure probe noise — the distinction the Analyzer
/// must recover (§4.3.1-§4.3.2).
bool is_network_fault(FaultKind k);
/// Whether the network-side fault is attributable to an RNIC (vs switch).
bool is_rnic_fault(FaultKind k);

/// Ground truth about an active fault.
struct FaultRecord {
  int handle = 0;
  FaultKind kind{};
  RnicId rnic;      // valid for RNIC-side faults
  HostId host;      // valid for host-side faults
  LinkId link;      // valid for link/switch-port faults (either direction)
  SwitchId sw;      // valid for switch faults
  bool active = false;
  std::string describe(const topo::Topology& topo) const;
};

class FaultInjector {
 public:
  explicit FaultInjector(host::Cluster& cluster);

  // ---- Table 2 root causes ----

  /// #1: the RNIC's port bounces with the given duty cycle.
  int inject_rnic_flapping(RnicId rnic, TimeNs down_time, TimeNs up_time);
  /// #1: a fabric switch port bounces.
  int inject_switch_port_flapping(LinkId link, TimeNs down_time,
                                  TimeNs up_time);
  /// #2: per-packet corruption drops on a cable (both directions).
  int inject_corruption(LinkId link, double drop_prob);
  /// #3.
  int inject_rnic_down(RnicId rnic);
  /// #4: host powers off; all of its RNICs go silent too.
  int inject_host_down(HostId host);
  /// #5: the two directions of a cable pause each other forever.
  int inject_pfc_deadlock(LinkId link);
  /// #6.
  int inject_route_missing(RnicId rnic);
  /// #7.
  int inject_gid_index_missing(RnicId rnic);
  /// #8: switch ACL denies (src, dst); zero IpAddr = wildcard.
  int inject_acl_error(SwitchId sw, IpAddr src, IpAddr dst);
  /// #9: PFC headroom misconfigured on a link: congestion drops packets.
  int inject_pfc_misconfigured(LinkId link);
  /// #12.
  int inject_cpu_overload(HostId host, double load = 0.97);
  /// #13/#14: PCIe downgraded to `factor` of nominal bandwidth.
  int inject_pcie_downgrade(RnicId rnic, double factor = 0.25);

  // ---- probe-noise sources ----

  /// Fig. 6 right: the service pegs every core; the Agent starves.
  int inject_agent_cpu_occupation(HostId host);
  /// Degrade the whole control plane: every transport channel (uploads,
  /// registrations, pinglist pulls) gains `extra_latency` per message and an
  /// additional independent loss probability `extra_loss`. The data plane is
  /// untouched — measurements must stay correct while their *reporting path*
  /// suffers ("waiting at the front door" scenario).
  int inject_control_plane_degradation(TimeNs extra_latency,
                                       double extra_loss);
  /// §4.3.1: the Agent process on `host` restarts, so every Agent QP on the
  /// host's RNICs is recreated with fresh QPNs. Callers (the Agent harness)
  /// observe this via the returned record; the injector only flags it.
  int inject_qpn_reset(HostId host);

  // ---- lifecycle ----

  /// Revert a fault. Safe to call twice.
  void clear(int handle);
  void clear_all();

  [[nodiscard]] const FaultRecord& record(int handle) const;
  [[nodiscard]] std::vector<FaultRecord> active_faults() const;

 private:
  struct Active {
    FaultRecord rec;
    std::unique_ptr<sim::PeriodicTask> flapper;
    std::function<void()> revert;
  };

  int register_fault(FaultRecord rec, std::function<void()> revert,
                     std::unique_ptr<sim::PeriodicTask> flapper = nullptr);

  host::Cluster& cluster_;
  int next_handle_ = 1;
  std::unordered_map<int, Active> active_;
};

}  // namespace rpm::faults
