#include "faults/faults.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace rpm::faults {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kRnicFlapping:
      return "rnic-flapping";
    case FaultKind::kSwitchPortFlapping:
      return "switch-port-flapping";
    case FaultKind::kPacketCorruption:
      return "packet-corruption";
    case FaultKind::kRnicDown:
      return "rnic-down";
    case FaultKind::kHostDown:
      return "host-down";
    case FaultKind::kPfcDeadlock:
      return "pfc-deadlock";
    case FaultKind::kRnicRouteMissing:
      return "rnic-route-missing";
    case FaultKind::kRnicGidIndexMissing:
      return "rnic-gid-index-missing";
    case FaultKind::kSwitchAclError:
      return "switch-acl-error";
    case FaultKind::kPfcMisconfigured:
      return "pfc-misconfigured";
    case FaultKind::kUnevenLoadBalance:
      return "uneven-load-balance";
    case FaultKind::kServiceInterference:
      return "service-interference";
    case FaultKind::kCpuOverload:
      return "cpu-overload";
    case FaultKind::kPcieDowngrade:
      return "pcie-downgrade";
    case FaultKind::kAgentCpuOccupation:
      return "agent-cpu-occupation";
    case FaultKind::kQpnReset:
      return "qpn-reset";
    case FaultKind::kControlPlaneDegradation:
      return "control-plane-degradation";
  }
  return "?";
}

bool is_network_fault(FaultKind k) {
  switch (k) {
    case FaultKind::kRnicFlapping:
    case FaultKind::kSwitchPortFlapping:
    case FaultKind::kPacketCorruption:
    case FaultKind::kRnicDown:
    case FaultKind::kPfcDeadlock:
    case FaultKind::kRnicRouteMissing:
    case FaultKind::kRnicGidIndexMissing:
    case FaultKind::kSwitchAclError:
    case FaultKind::kPfcMisconfigured:
    case FaultKind::kUnevenLoadBalance:
    case FaultKind::kServiceInterference:
    case FaultKind::kPcieDowngrade:
      return true;
    case FaultKind::kHostDown:
    case FaultKind::kCpuOverload:
    case FaultKind::kAgentCpuOccupation:
    case FaultKind::kQpnReset:
    case FaultKind::kControlPlaneDegradation:  // monitoring plane, not fabric
      return false;
  }
  return false;
}

bool is_rnic_fault(FaultKind k) {
  switch (k) {
    case FaultKind::kRnicFlapping:
    case FaultKind::kRnicDown:
    case FaultKind::kRnicRouteMissing:
    case FaultKind::kRnicGidIndexMissing:
    case FaultKind::kPcieDowngrade:
      return true;
    default:
      return false;
  }
}

std::string FaultRecord::describe(const topo::Topology& topo) const {
  std::ostringstream os;
  os << fault_kind_name(kind);
  if (rnic.valid()) os << " @" << topo.rnic(rnic).name;
  if (host.valid()) os << " @" << topo.host(host).name;
  if (link.valid()) os << " @" << topo.link(link).name;
  if (sw.valid()) os << " @" << topo.switch_info(sw).name;
  return os.str();
}

FaultInjector::FaultInjector(host::Cluster& cluster) : cluster_(cluster) {}

int FaultInjector::register_fault(FaultRecord rec,
                                  std::function<void()> revert,
                                  std::unique_ptr<sim::PeriodicTask> flapper) {
  rec.handle = next_handle_++;
  rec.active = true;
  telemetry::registry()
      .counter("rpm_faults_injected_total", "Fault injections by kind",
               {{"kind", fault_kind_name(rec.kind)}})
      .inc();
  telemetry::tracer().instant(fault_kind_name(rec.kind), "fault.inject");
  Active a;
  a.rec = rec;
  a.flapper = std::move(flapper);
  a.revert = std::move(revert);
  active_.emplace(rec.handle, std::move(a));
  return rec.handle;
}

namespace {

/// Builds a flapper that alternates down/up phases with the given dwell
/// times, starting with "down" immediately.
std::unique_ptr<sim::PeriodicTask> make_flapper(
    sim::Scheduler& sched, TimeNs down_time, TimeNs up_time,
    std::function<void(bool down)> set) {
  if (down_time <= 0 || up_time <= 0) {
    throw std::invalid_argument("flapping: dwell times must be > 0");
  }
  // One periodic task per full cycle; the down->up transition is a one-shot
  // event inside the cycle.
  auto state = std::make_shared<bool>(false);
  auto task = std::make_unique<sim::PeriodicTask>(
      sched, down_time + up_time, [&sched, set, down_time, state] {
        set(true);
        *state = true;
        sched.schedule_after(down_time, [set, state] {
          if (*state) set(false);
          *state = false;
        });
      });
  task->start();
  return task;
}

}  // namespace

int FaultInjector::inject_rnic_flapping(RnicId rnic, TimeNs down_time,
                                        TimeNs up_time) {
  const LinkId link = cluster_.topology().rnic(rnic).uplink;
  auto& fab = cluster_.fabric();
  auto flapper = make_flapper(
      cluster_.scheduler(), down_time, up_time,
      [&fab, link](bool down) { fab.set_cable_flapping(link, down); });
  FaultRecord rec;
  rec.kind = FaultKind::kRnicFlapping;
  rec.rnic = rnic;
  rec.link = link;
  return register_fault(
      rec, [&fab, link] { fab.set_cable_flapping(link, false); },
      std::move(flapper));
}

int FaultInjector::inject_switch_port_flapping(LinkId link, TimeNs down_time,
                                               TimeNs up_time) {
  auto& fab = cluster_.fabric();
  auto flapper = make_flapper(
      cluster_.scheduler(), down_time, up_time,
      [&fab, link](bool down) { fab.set_cable_flapping(link, down); });
  FaultRecord rec;
  rec.kind = FaultKind::kSwitchPortFlapping;
  rec.link = link;
  const topo::Link& l = cluster_.topology().link(link);
  if (l.from.is_switch()) rec.sw = l.from.as_switch();
  return register_fault(
      rec, [&fab, link] { fab.set_cable_flapping(link, false); },
      std::move(flapper));
}

int FaultInjector::inject_corruption(LinkId link, double drop_prob) {
  if (drop_prob < 0.0 || drop_prob > 1.0) {
    throw std::invalid_argument("inject_corruption: prob out of range");
  }
  auto& fab = cluster_.fabric();
  const LinkId peer = cluster_.topology().link(link).peer;
  fab.link_state(link).corrupt_prob = drop_prob;
  fab.link_state(peer).corrupt_prob = drop_prob;
  FaultRecord rec;
  rec.kind = FaultKind::kPacketCorruption;
  rec.link = link;
  return register_fault(rec, [&fab, link, peer] {
    fab.link_state(link).corrupt_prob = 0.0;
    fab.link_state(peer).corrupt_prob = 0.0;
  });
}

int FaultInjector::inject_rnic_down(RnicId rnic) {
  auto& dev = cluster_.rnic_device(rnic);
  dev.set_down(true);
  FaultRecord rec;
  rec.kind = FaultKind::kRnicDown;
  rec.rnic = rnic;
  return register_fault(rec, [&dev] { dev.set_down(false); });
}

int FaultInjector::inject_host_down(HostId host) {
  auto& h = cluster_.host(host);
  h.set_down(true);
  // Power loss: every RNIC in the host goes down with it.
  std::vector<RnicId> rnics = cluster_.topology().host(host).rnics;
  for (RnicId r : rnics) cluster_.rnic_device(r).set_down(true);
  FaultRecord rec;
  rec.kind = FaultKind::kHostDown;
  rec.host = host;
  host::Cluster* cl = &cluster_;
  return register_fault(rec, [cl, &h, rnics] {
    h.set_down(false);
    for (RnicId r : rnics) cl->rnic_device(r).set_down(false);
  });
}

int FaultInjector::inject_pfc_deadlock(LinkId link) {
  auto& fab = cluster_.fabric();
  const LinkId peer = cluster_.topology().link(link).peer;
  fab.link_state(link).deadlocked = true;
  fab.link_state(peer).deadlocked = true;
  FaultRecord rec;
  rec.kind = FaultKind::kPfcDeadlock;
  rec.link = link;
  return register_fault(rec, [&fab, link, peer] {
    fab.link_state(link).deadlocked = false;
    fab.link_state(peer).deadlocked = false;
  });
}

int FaultInjector::inject_route_missing(RnicId rnic) {
  auto& dev = cluster_.rnic_device(rnic);
  dev.set_routing_config_missing(true);
  FaultRecord rec;
  rec.kind = FaultKind::kRnicRouteMissing;
  rec.rnic = rnic;
  return register_fault(rec,
                        [&dev] { dev.set_routing_config_missing(false); });
}

int FaultInjector::inject_gid_index_missing(RnicId rnic) {
  auto& dev = cluster_.rnic_device(rnic);
  dev.set_gid_index_missing(true);
  FaultRecord rec;
  rec.kind = FaultKind::kRnicGidIndexMissing;
  rec.rnic = rnic;
  return register_fault(rec, [&dev] { dev.set_gid_index_missing(false); });
}

int FaultInjector::inject_acl_error(SwitchId sw, IpAddr src, IpAddr dst) {
  auto& fab = cluster_.fabric();
  fab.add_acl_deny(sw, src, dst);
  FaultRecord rec;
  rec.kind = FaultKind::kSwitchAclError;
  rec.sw = sw;
  return register_fault(rec, [&fab, sw] { fab.clear_acl(sw); });
}

int FaultInjector::inject_pfc_misconfigured(LinkId link) {
  auto& fab = cluster_.fabric();
  fab.link_state(link).pfc_misconfigured = true;
  FaultRecord rec;
  rec.kind = FaultKind::kPfcMisconfigured;
  rec.link = link;
  const topo::Link& l = cluster_.topology().link(link);
  if (l.from.is_switch()) rec.sw = l.from.as_switch();
  return register_fault(
      rec, [&fab, link] { fab.link_state(link).pfc_misconfigured = false; });
}

int FaultInjector::inject_cpu_overload(HostId host, double load) {
  auto& h = cluster_.host(host);
  const double before = h.cpu_load();
  h.set_cpu_load(load);
  FaultRecord rec;
  rec.kind = FaultKind::kCpuOverload;
  rec.host = host;
  return register_fault(rec, [&h, before] { h.set_cpu_load(before); });
}

int FaultInjector::inject_pcie_downgrade(RnicId rnic, double factor) {
  auto& dev = cluster_.rnic_device(rnic);
  dev.set_pcie_factor(factor);
  FaultRecord rec;
  rec.kind = FaultKind::kPcieDowngrade;
  rec.rnic = rnic;
  return register_fault(rec, [&dev] { dev.set_pcie_factor(1.0); });
}

int FaultInjector::inject_agent_cpu_occupation(HostId host) {
  auto& h = cluster_.host(host);
  const double before = h.cpu_load();
  h.set_cpu_load(1.0);
  FaultRecord rec;
  rec.kind = FaultKind::kAgentCpuOccupation;
  rec.host = host;
  return register_fault(rec, [&h, before] { h.set_cpu_load(before); });
}

int FaultInjector::inject_qpn_reset(HostId host) {
  FaultRecord rec;
  rec.kind = FaultKind::kQpnReset;
  rec.host = host;
  return register_fault(rec, [] {});
}

int FaultInjector::inject_control_plane_degradation(TimeNs extra_latency,
                                                    double extra_loss) {
  FaultRecord rec;
  rec.kind = FaultKind::kControlPlaneDegradation;
  transport::ControlPlane& cp = cluster_.control_plane();
  cp.set_degradation(extra_latency, extra_loss);
  return register_fault(rec, [&cp] { cp.clear_degradation(); });
}

void FaultInjector::clear(int handle) {
  auto it = active_.find(handle);
  if (it == active_.end()) return;
  if (it->second.flapper) it->second.flapper->cancel();
  telemetry::registry()
      .counter("rpm_faults_cleared_total", "Fault reverts by kind",
               {{"kind", fault_kind_name(it->second.rec.kind)}})
      .inc();
  telemetry::tracer().instant(fault_kind_name(it->second.rec.kind),
                              "fault.clear");
  it->second.revert();
  active_.erase(it);
}

void FaultInjector::clear_all() {
  // Revert in ascending-handle (injection) order. Iterating the
  // unordered_map directly would let the platform's hashing decide the
  // revert order, and stacked faults that capture "before" state (two CPU
  // loads on one host, say) then settle on implementation-defined values —
  // breaking seeded-run byte-identity across a clear_all().
  std::vector<int> handles;
  handles.reserve(active_.size());
  for (const auto& [h, a] : active_) handles.push_back(h);
  std::sort(handles.begin(), handles.end());
  for (int h : handles) clear(h);
}

const FaultRecord& FaultInjector::record(int handle) const {
  const auto it = active_.find(handle);
  if (it == active_.end()) {
    throw std::out_of_range("FaultInjector::record: unknown handle");
  }
  return it->second.rec;
}

std::vector<FaultRecord> FaultInjector::active_faults() const {
  std::vector<FaultRecord> out;
  out.reserve(active_.size());
  for (const auto& [_, a] : active_) out.push_back(a.rec);
  return out;
}

}  // namespace rpm::faults
